package ens

import (
	"fmt"
	"strings"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
)

// Subdomain is a registry record under a .eth second-level name
// (pay.gold.eth). Subdomains are plain registry entries: they have an
// owner but no expiry of their own — they live and die with their parent's
// registration in practice, but the registry record itself persists (one
// more place residual state accumulates). The paper's dataset includes
// 846,752 of them.
type Subdomain struct {
	// FullName is the dot-separated name without the trailing ".eth".
	FullName string
	Node     ethtypes.Hash
	Parent   ethtypes.Hash // parent node (namehash of the 2LD)
	Owner    ethtypes.Address
	Created  int64
}

// CreateSubdomain creates (or reassigns) label.parent.eth, owned by
// subOwner. Only the parent name's current registrant may do this — the
// registry's setSubnodeOwner authorization.
func (s *Service) CreateSubdomain(now int64, from ethtypes.Address, parentLabel, subLabel string, subOwner ethtypes.Address) (*chain.Receipt, error) {
	if subLabel == "" || strings.Contains(subLabel, ".") {
		return nil, fmt.Errorf("%w: %q", ErrInvalidLabel, subLabel)
	}
	return s.chain.Apply(now, from, s.RegistryAddr, ethtypes.Wei{}, []byte(subLabel+"."+parentLabel), "setSubnodeOwner", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		reg, ok := s.regs[LabelHash(parentLabel)]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotRegistered, parentLabel)
		}
		if reg.Registrant != from || now > reg.Expiry {
			return fmt.Errorf("%w: %s", ErrNotOwner, from)
		}
		full := subLabel + "." + parentLabel
		node := Namehash(full + ".eth")
		s.subnodes[node] = &Subdomain{
			FullName: full,
			Node:     node,
			Parent:   Namehash(parentLabel + ".eth"),
			Owner:    subOwner,
			Created:  now,
		}
		data := map[string]string{
			"node":   node.Hex(),
			"parent": Namehash(parentLabel + ".eth").Hex(),
			"label":  LabelHash(subLabel).Hex(),
			"owner":  subOwner.Hex(),
			"name":   full,
		}
		if reg.Unindexed {
			delete(data, "name")
		}
		ctx.Emit("NewOwner", []ethtypes.Hash{node}, data)
		return nil
	})
}

// SetSubdomainAddr sets the resolver record of an existing subdomain. Only
// the subdomain's owner may do so; like 2LD records, the record persists
// regardless of the parent's expiry.
func (s *Service) SetSubdomainAddr(now int64, from ethtypes.Address, fullName string, target ethtypes.Address) (*chain.Receipt, error) {
	return s.chain.Apply(now, from, s.ResolverAddr, ethtypes.Wei{}, []byte(fullName), "setAddr", func(ctx *chain.TxContext) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		node := Namehash(fullName + ".eth")
		sub, ok := s.subnodes[node]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotRegistered, fullName)
		}
		if sub.Owner != from {
			return fmt.Errorf("%w: %s", ErrNotOwner, from)
		}
		s.addrRec[node] = target
		ctx.Emit("AddrChanged", []ethtypes.Hash{node}, map[string]string{
			"node": node.Hex(),
			"addr": target.Hex(),
		})
		return nil
	})
}

// SubdomainOf returns the registry record for a full subdomain name
// ("pay.gold"), if any.
func (s *Service) SubdomainOf(fullName string) (*Subdomain, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sub, ok := s.subnodes[Namehash(fullName+".eth")]
	if !ok {
		return nil, false
	}
	cp := *sub
	return &cp, true
}

// SubdomainCount returns the number of registry subdomain records.
func (s *Service) SubdomainCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subnodes)
}
