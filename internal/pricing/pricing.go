// Package pricing supplies the ETH-USD daily closing price series the paper
// obtains from Yahoo Finance. The study converts every on-chain amount to
// USD "using the adjusted closing price on the day of each Ethereum
// transaction", so the oracle exposes exactly that: a deterministic
// Close(day) function.
//
// The series is synthetic but shaped on the real 2019-2024 ETH-USD history
// (COVID crash, 2021 bull runs to ~4.8K, 2022 drawdown, 2023 range) using
// log-space interpolation between anchor closes plus small deterministic
// day-level noise, so heavy-tailed USD income distributions and
// time-dependent effects behave like they did for the paper's dataset.
package pricing

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ensdropcatch/internal/keccak"
)

// anchor is a (date, close) calibration point taken from the real series.
type anchor struct {
	date  string // YYYY-MM-DD
	close float64
}

var anchors = []anchor{
	{"2019-01-01", 140},
	{"2019-06-26", 310},
	{"2019-12-31", 130},
	{"2020-03-13", 110}, // COVID crash
	{"2020-08-01", 390},
	{"2021-01-01", 730},
	{"2021-05-11", 4100},
	{"2021-07-20", 1800},
	{"2021-11-08", 4800}, // all-time high
	{"2022-01-01", 3700},
	{"2022-06-18", 1000},
	{"2022-09-15", 1470}, // the Merge
	{"2023-01-01", 1200},
	{"2023-04-15", 2100},
	{"2023-09-30", 1670},
	{"2024-06-30", 3400},
}

// Oracle converts between ETH and USD at historical daily closes.
// The zero value is not usable; construct with NewOracle.
type Oracle struct {
	days   []int64   // unix day numbers of anchors, ascending
	logs   []float64 // log-closes at anchors
	noise  float64   // relative day-level noise amplitude (e.g. 0.03)
	origin time.Time

	// closes caches the per-day closing price over the anchor span plus a
	// margin, computed once at construction. The daily deterministic noise
	// costs a keccak per call, and USD conversion sits inside every hot
	// analysis loop; days outside the cache fall back to computeClose,
	// which returns bit-identical values.
	closes    []float64
	closeBase int64 // unix day of closes[0]
}

// NewOracle returns the standard oracle with ±3% deterministic daily noise.
func NewOracle() *Oracle { return NewOracleNoise(0.03) }

// NewOracleNoise returns an oracle with the given relative daily noise
// amplitude; 0 yields the pure interpolated curve.
func NewOracleNoise(noise float64) *Oracle {
	o := &Oracle{noise: noise, origin: time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)}
	for _, a := range anchors {
		ts, err := time.Parse("2006-01-02", a.date)
		if err != nil {
			panic(fmt.Sprintf("pricing: bad anchor date %q: %v", a.date, err))
		}
		o.days = append(o.days, unixDay(ts.Unix()))
		o.logs = append(o.logs, math.Log(a.close))
	}
	if !sort.SliceIsSorted(o.days, func(i, j int) bool { return o.days[i] < o.days[j] }) {
		panic("pricing: anchors out of order")
	}
	const margin = 400 // days beyond the anchors still worth caching
	lo := o.days[0] - margin
	hi := o.days[len(o.days)-1] + margin
	o.closeBase = lo
	o.closes = make([]float64, hi-lo+1)
	for d := lo; d <= hi; d++ {
		o.closes[d-lo] = o.computeClose(d)
	}
	return o
}

func unixDay(unix int64) int64 {
	return unix / 86400
}

// Close returns the ETH-USD close for the day containing the given unix
// timestamp. Timestamps before the first anchor clamp to the first close;
// after the last anchor, to the last.
func (o *Oracle) Close(unix int64) float64 {
	day := unixDay(unix)
	if idx := day - o.closeBase; idx >= 0 && idx < int64(len(o.closes)) {
		return o.closes[idx]
	}
	return o.computeClose(day)
}

// computeClose derives the close for a unix day from scratch: log-space
// interpolation between anchors plus the deterministic daily jitter.
func (o *Oracle) computeClose(day int64) float64 {
	base := o.interp(day)
	if o.noise == 0 {
		return base
	}
	// Deterministic per-day jitter in [-noise, +noise].
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(day >> (8 * i))
	}
	sum := keccak.Sum256(buf[:])
	u := float64(uint16(sum[0])<<8|uint16(sum[1])) / 65535.0 // [0,1]
	return base * (1 + o.noise*(2*u-1))
}

func (o *Oracle) interp(day int64) float64 {
	n := len(o.days)
	if day <= o.days[0] {
		return math.Exp(o.logs[0])
	}
	if day >= o.days[n-1] {
		return math.Exp(o.logs[n-1])
	}
	idx := sort.Search(n, func(i int) bool { return o.days[i] > day }) - 1
	span := float64(o.days[idx+1] - o.days[idx])
	frac := float64(day-o.days[idx]) / span
	return math.Exp(o.logs[idx]*(1-frac) + o.logs[idx+1]*frac)
}

// USD converts an amount of ether to USD at the close of the day containing
// unix.
func (o *Oracle) USD(eth float64, unix int64) float64 {
	return eth * o.Close(unix)
}

// ETH converts a USD amount to ether at the close of the day containing
// unix.
func (o *Oracle) ETH(usd float64, unix int64) float64 {
	c := o.Close(unix)
	if c == 0 {
		return 0
	}
	return usd / c
}
