package pricing

import (
	"testing"
	"testing/quick"
	"time"
)

func unixOf(date string) int64 {
	t, err := time.Parse("2006-01-02", date)
	if err != nil {
		panic(err)
	}
	return t.Unix()
}

func TestCloseAtAnchors(t *testing.T) {
	o := NewOracleNoise(0)
	cases := []struct {
		date string
		want float64
	}{
		{"2020-03-13", 110},
		{"2021-11-08", 4800},
		{"2022-06-18", 1000},
	}
	for _, c := range cases {
		got := o.Close(unixOf(c.date))
		if rel := (got - c.want) / c.want; rel > 0.001 || rel < -0.001 {
			t.Errorf("Close(%s) = %v, want %v", c.date, got, c.want)
		}
	}
}

func TestCloseClampsOutOfRange(t *testing.T) {
	o := NewOracleNoise(0)
	early := o.Close(unixOf("2015-01-01"))
	first := o.Close(unixOf("2019-01-01"))
	if early != first {
		t.Errorf("pre-range close %v != first anchor %v", early, first)
	}
	late := o.Close(unixOf("2030-01-01"))
	last := o.Close(unixOf("2024-06-30"))
	if late != last {
		t.Errorf("post-range close %v != last anchor %v", late, last)
	}
}

func TestCloseDeterministic(t *testing.T) {
	o1, o2 := NewOracle(), NewOracle()
	ts := unixOf("2021-06-15")
	if o1.Close(ts) != o2.Close(ts) {
		t.Error("Close not deterministic across oracles")
	}
	// Same day, different second -> same close.
	if o1.Close(ts) != o1.Close(ts+3600) {
		t.Error("intra-day timestamps gave different closes")
	}
	// Different days differ (noise plus interpolation).
	if o1.Close(ts) == o1.Close(ts+86400*30) {
		t.Error("closes a month apart are identical")
	}
}

func TestNoiseBounded(t *testing.T) {
	pure := NewOracleNoise(0)
	noisy := NewOracleNoise(0.03)
	for d := 0; d < 1500; d++ {
		ts := unixOf("2019-06-01") + int64(d)*86400
		p, n := pure.Close(ts), noisy.Close(ts)
		rel := (n - p) / p
		if rel > 0.0301 || rel < -0.0301 {
			t.Fatalf("day %d: noise %.4f exceeds bound", d, rel)
		}
	}
}

func TestBullAndBearShape(t *testing.T) {
	o := NewOracleNoise(0)
	covid := o.Close(unixOf("2020-03-13"))
	ath := o.Close(unixOf("2021-11-08"))
	bear := o.Close(unixOf("2022-06-18"))
	if !(ath > 10*covid) {
		t.Errorf("ATH %v not >10x COVID low %v", ath, covid)
	}
	if !(bear < ath/3) {
		t.Errorf("2022 bear %v not <1/3 of ATH %v", bear, ath)
	}
}

func TestUSDETHInverse(t *testing.T) {
	o := NewOracle()
	ts := unixOf("2022-02-02")
	usd := o.USD(2.5, ts)
	eth := o.ETH(usd, ts)
	if diff := eth - 2.5; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("round trip: 2.5 ETH -> %v USD -> %v ETH", usd, eth)
	}
}

func TestQuickClosePositive(t *testing.T) {
	o := NewOracle()
	f := func(offsetDays uint16) bool {
		ts := unixOf("2018-01-01") + int64(offsetDays)*86400
		c := o.Close(ts)
		return c > 50 && c < 10000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
