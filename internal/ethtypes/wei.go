package ethtypes

import (
	"fmt"
	"math/big"
)

// WeiPerEther is the number of wei in one ether (10^18).
var WeiPerEther = new(big.Int).Exp(big.NewInt(10), big.NewInt(18), nil)

var weiPerGwei = big.NewInt(1_000_000_000)

// Wei is an exact, non-negative amount of wei. The zero value is zero wei
// and is ready to use. Wei values are immutable: arithmetic returns new
// values and never aliases operand storage.
type Wei struct {
	v *big.Int // nil means zero
}

// NewWei returns an amount of v wei. It panics if v is negative, because
// account balances and transfer values are never negative on-chain.
func NewWei(v int64) Wei {
	if v < 0 {
		panic(fmt.Sprintf("ethtypes: negative wei amount %d", v))
	}
	return Wei{big.NewInt(v)}
}

// WeiFromBig returns an amount equal to v, copying it. It panics if v is
// negative.
func WeiFromBig(v *big.Int) Wei {
	if v.Sign() < 0 {
		panic("ethtypes: negative wei amount")
	}
	return Wei{new(big.Int).Set(v)}
}

// Ether returns n whole ether as wei.
func Ether(n int64) Wei {
	if n < 0 {
		panic(fmt.Sprintf("ethtypes: negative ether amount %d", n))
	}
	return Wei{new(big.Int).Mul(big.NewInt(n), WeiPerEther)}
}

// Gwei returns n gwei (10^9 wei) as wei.
func Gwei(n int64) Wei {
	if n < 0 {
		panic(fmt.Sprintf("ethtypes: negative gwei amount %d", n))
	}
	return Wei{new(big.Int).Mul(big.NewInt(n), weiPerGwei)}
}

// EtherFloat converts a float amount of ether to wei, rounding to the
// nearest wei. Useful for synthetic workloads expressed in ETH.
func EtherFloat(eth float64) Wei {
	if eth < 0 {
		panic("ethtypes: negative ether amount")
	}
	f := new(big.Float).SetFloat64(eth)
	f.Mul(f, new(big.Float).SetInt(WeiPerEther))
	i, _ := f.Int(nil)
	return Wei{i}
}

func (w Wei) big() *big.Int {
	if w.v == nil {
		return new(big.Int)
	}
	return w.v
}

// BigInt returns a copy of the amount as a big.Int.
func (w Wei) BigInt() *big.Int { return new(big.Int).Set(w.big()) }

// Add returns w + o.
func (w Wei) Add(o Wei) Wei { return Wei{new(big.Int).Add(w.big(), o.big())} }

// Sub returns w - o. It panics if the result would be negative.
func (w Wei) Sub(o Wei) Wei {
	r := new(big.Int).Sub(w.big(), o.big())
	if r.Sign() < 0 {
		panic("ethtypes: wei underflow")
	}
	return Wei{r}
}

// MulInt returns w * n for non-negative n.
func (w Wei) MulInt(n int64) Wei {
	if n < 0 {
		panic("ethtypes: negative multiplier")
	}
	return Wei{new(big.Int).Mul(w.big(), big.NewInt(n))}
}

// DivInt returns w / n (truncating) for positive n.
func (w Wei) DivInt(n int64) Wei {
	if n <= 0 {
		panic("ethtypes: non-positive divisor")
	}
	return Wei{new(big.Int).Div(w.big(), big.NewInt(n))}
}

// Cmp compares w and o, returning -1, 0, or +1.
func (w Wei) Cmp(o Wei) int { return w.big().Cmp(o.big()) }

// IsZero reports whether the amount is zero.
func (w Wei) IsZero() bool { return w.big().Sign() == 0 }

// Ether returns the amount as a float64 number of ether. The conversion is
// lossy for very large amounts, which is acceptable for analysis (the paper
// converts on-chain values to USD floats the same way).
func (w Wei) Ether() float64 {
	f := new(big.Float).SetInt(w.big())
	f.Quo(f, new(big.Float).SetInt(WeiPerEther))
	out, _ := f.Float64()
	return out
}

// String renders the amount in wei followed by the unit, e.g. "1500 wei".
func (w Wei) String() string { return w.big().String() + " wei" }

// MarshalText implements encoding.TextMarshaler as a decimal wei count.
func (w Wei) MarshalText() ([]byte, error) {
	return []byte(w.big().String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (w *Wei) UnmarshalText(text []byte) error {
	i, ok := new(big.Int).SetString(string(text), 10)
	if !ok {
		return fmt.Errorf("ethtypes: invalid wei amount %q", text)
	}
	if i.Sign() < 0 {
		return fmt.Errorf("ethtypes: negative wei amount %q", text)
	}
	w.v = i
	return nil
}
