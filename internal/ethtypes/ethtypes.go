// Package ethtypes defines the elementary Ethereum value types shared by the
// rest of the repository: 20-byte addresses, 32-byte hashes, and Wei amounts
// with exact big-integer arithmetic. Hex encoding follows Ethereum
// conventions (0x prefix, EIP-55 mixed-case checksums for addresses).
package ethtypes

import (
	"encoding/hex"
	"fmt"

	"ensdropcatch/internal/keccak"
)

// AddressLength is the size of an Ethereum address in bytes.
const AddressLength = 20

// HashLength is the size of an Ethereum hash in bytes.
const HashLength = 32

// Address is a 20-byte Ethereum account or contract address.
type Address [AddressLength]byte

// Hash is a 32-byte Keccak-256 digest (transaction IDs, event topics,
// namehashes).
type Hash [HashLength]byte

// ZeroAddress is the all-zero address, used by ENS to mean "unset".
var ZeroAddress Address

// ZeroHash is the all-zero hash (the ENS root node).
var ZeroHash Hash

// BytesToAddress returns the address formed by the last 20 bytes of b,
// left-padding with zeros when b is shorter.
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressLength {
		b = b[len(b)-AddressLength:]
	}
	copy(a[AddressLength-len(b):], b)
	return a
}

// BytesToHash returns the hash formed by the last 32 bytes of b,
// left-padding with zeros when b is shorter.
func BytesToHash(b []byte) Hash {
	var h Hash
	if len(b) > HashLength {
		b = b[len(b)-HashLength:]
	}
	copy(h[HashLength-len(b):], b)
	return h
}

// HashData returns the Keccak-256 digest of data as a Hash.
func HashData(data []byte) Hash {
	return Hash(keccak.Sum256(data))
}

// DeriveAddress deterministically derives an address from a label such as
// "owner-001". The simulated world uses it instead of ECDSA key generation:
// the address is the last 20 bytes of keccak256(label), matching how real
// addresses are derived from public keys.
func DeriveAddress(label string) Address {
	sum := keccak.Sum256([]byte(label))
	return BytesToAddress(sum[12:])
}

// ParseAddress parses a 0x-prefixed (or bare) 40-digit hex address.
// Mixed-case inputs are accepted without checksum verification; use
// VerifyChecksum for strict EIP-55 validation.
func ParseAddress(s string) (Address, error) {
	b, err := parseHex(s, AddressLength)
	if err != nil {
		return Address{}, fmt.Errorf("parse address %q: %w", s, err)
	}
	return BytesToAddress(b), nil
}

// ParseHash parses a 0x-prefixed (or bare) 64-digit hex hash.
func ParseHash(s string) (Hash, error) {
	b, err := parseHex(s, HashLength)
	if err != nil {
		return Hash{}, fmt.Errorf("parse hash %q: %w", s, err)
	}
	return BytesToHash(b), nil
}

func parseHex(s string, want int) ([]byte, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(b) != want {
		return nil, fmt.Errorf("got %d bytes, want %d", len(b), want)
	}
	return b, nil
}

// Hex returns the EIP-55 checksummed 0x-prefixed representation.
func (a Address) Hex() string {
	raw := hex.EncodeToString(a[:])
	sum := keccak.Sum256([]byte(raw))
	out := make([]byte, 2+2*AddressLength)
	out[0], out[1] = '0', 'x'
	for i, c := range []byte(raw) {
		if c >= 'a' && c <= 'f' {
			// Uppercase when the corresponding checksum nibble is >= 8.
			nibble := sum[i/2]
			if i%2 == 0 {
				nibble >>= 4
			}
			if nibble&0x0f >= 8 {
				c -= 'a' - 'A'
			}
		}
		out[2+i] = c
	}
	return string(out)
}

// VerifyChecksum reports whether s is a correctly EIP-55 checksummed
// representation of some address. All-lowercase and all-uppercase inputs are
// accepted per the EIP.
func VerifyChecksum(s string) bool {
	a, err := ParseAddress(s)
	if err != nil {
		return false
	}
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	if isUniformCase(s) {
		return true
	}
	return "0x"+s == a.Hex()
}

func isUniformCase(s string) bool {
	lower, upper := false, false
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'f':
			lower = true
		case c >= 'A' && c <= 'F':
			upper = true
		}
	}
	return !(lower && upper)
}

// String returns the checksummed hex form.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether the address is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// MarshalText implements encoding.TextMarshaler (lower-case hex for
// stability of serialized datasets).
func (a Address) MarshalText() ([]byte, error) {
	return []byte("0x" + hex.EncodeToString(a[:])), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Address) UnmarshalText(text []byte) error {
	parsed, err := ParseAddress(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// Hex returns the 0x-prefixed lower-case hex form.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String returns the hex form.
func (h Hash) String() string { return h.Hex() }

// IsZero reports whether the hash is all zeros.
func (h Hash) IsZero() bool { return h == ZeroHash }

// MarshalText implements encoding.TextMarshaler.
func (h Hash) MarshalText() ([]byte, error) {
	return []byte(h.Hex()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (h *Hash) UnmarshalText(text []byte) error {
	parsed, err := ParseHash(string(text))
	if err != nil {
		return err
	}
	*h = parsed
	return nil
}
