package ethtypes

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestBytesToAddressPadding(t *testing.T) {
	a := BytesToAddress([]byte{0x01, 0x02})
	if a[18] != 0x01 || a[19] != 0x02 {
		t.Errorf("short input not right-aligned: %x", a)
	}
	for i := 0; i < 18; i++ {
		if a[i] != 0 {
			t.Errorf("byte %d not zero-padded", i)
		}
	}
	long := make([]byte, 32)
	long[31] = 0xff
	b := BytesToAddress(long)
	if b[19] != 0xff {
		t.Errorf("long input not truncated from the left: %x", b)
	}
}

func TestEIP55Checksum(t *testing.T) {
	// Canonical test vectors from EIP-55.
	vectors := []string{
		"0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed",
		"0xfB6916095ca1df60bB79Ce92cE3Ea74c37c5d359",
		"0xdbF03B407c01E7cD3CBea99509d93f8DDDC8C6FB",
		"0xD1220A0cf47c7B9Be7A2E6BA89F429762e7b9aDb",
	}
	for _, v := range vectors {
		a, err := ParseAddress(v)
		if err != nil {
			t.Fatalf("ParseAddress(%q): %v", v, err)
		}
		if got := a.Hex(); got != v {
			t.Errorf("Hex() = %s, want %s", got, v)
		}
		if !VerifyChecksum(v) {
			t.Errorf("VerifyChecksum(%q) = false", v)
		}
	}
}

func TestVerifyChecksumRejectsBadCase(t *testing.T) {
	// Flip the case of one letter in a valid checksummed address.
	bad := "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAeD"
	if VerifyChecksum(bad) {
		t.Error("VerifyChecksum accepted a corrupted checksum")
	}
	// All-lowercase is always accepted.
	if !VerifyChecksum(strings.ToLower(bad)) {
		t.Error("VerifyChecksum rejected all-lowercase form")
	}
}

func TestParseAddressErrors(t *testing.T) {
	cases := []string{"", "0x", "0x123", "0xzz", strings.Repeat("a", 41)}
	for _, c := range cases {
		if _, err := ParseAddress(c); err == nil {
			t.Errorf("ParseAddress(%q) succeeded, want error", c)
		}
	}
}

func TestDeriveAddressDeterministic(t *testing.T) {
	a1 := DeriveAddress("owner-001")
	a2 := DeriveAddress("owner-001")
	b := DeriveAddress("owner-002")
	if a1 != a2 {
		t.Error("DeriveAddress not deterministic")
	}
	if a1 == b {
		t.Error("distinct labels produced the same address")
	}
	if a1.IsZero() {
		t.Error("derived address is zero")
	}
}

func TestAddressJSONRoundTrip(t *testing.T) {
	a := DeriveAddress("json-test")
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Address
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Errorf("round trip mismatch: %s vs %s", back, a)
	}
}

func TestHashJSONRoundTrip(t *testing.T) {
	h := HashData([]byte("gold.eth"))
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hash
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("round trip mismatch: %s vs %s", back, h)
	}
}

func TestQuickAddressTextRoundTrip(t *testing.T) {
	f := func(raw [20]byte) bool {
		a := Address(raw)
		text, err := a.MarshalText()
		if err != nil {
			return false
		}
		var back Address
		if err := back.UnmarshalText(text); err != nil {
			return false
		}
		return back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickChecksumSelfConsistent(t *testing.T) {
	f := func(raw [20]byte) bool {
		return VerifyChecksum(Address(raw).Hex())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
