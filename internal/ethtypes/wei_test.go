package ethtypes

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestWeiZeroValue(t *testing.T) {
	var w Wei
	if !w.IsZero() {
		t.Error("zero value is not zero")
	}
	if got := w.Add(NewWei(5)); got.Cmp(NewWei(5)) != 0 {
		t.Errorf("0 + 5 = %s", got)
	}
	if w.String() != "0 wei" {
		t.Errorf("String() = %q", w.String())
	}
}

func TestWeiArithmetic(t *testing.T) {
	a := Ether(2)
	b := Ether(1)
	if got := a.Sub(b); got.Cmp(Ether(1)) != 0 {
		t.Errorf("2e - 1e = %s", got)
	}
	if got := b.MulInt(3); got.Cmp(Ether(3)) != 0 {
		t.Errorf("1e * 3 = %s", got)
	}
	if got := a.DivInt(4); got.Ether() != 0.5 {
		t.Errorf("2e / 4 = %v ether", got.Ether())
	}
}

func TestWeiImmutability(t *testing.T) {
	a := NewWei(100)
	_ = a.Add(NewWei(50))
	if a.Cmp(NewWei(100)) != 0 {
		t.Error("Add mutated receiver")
	}
	bi := big.NewInt(77)
	w := WeiFromBig(bi)
	bi.SetInt64(999)
	if w.Cmp(NewWei(77)) != 0 {
		t.Error("WeiFromBig aliased caller's big.Int")
	}
}

func TestWeiUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sub underflow did not panic")
		}
	}()
	NewWei(1).Sub(NewWei(2))
}

func TestNegativePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewWei": func() { NewWei(-1) },
		"Ether":  func() { Ether(-1) },
		"Gwei":   func() { Gwei(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(-1) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEtherFloatRoundTrip(t *testing.T) {
	for _, eth := range []float64{0, 0.001, 1, 1.5, 4700.25} {
		w := EtherFloat(eth)
		if got := w.Ether(); math.Abs(got-eth) > 1e-9 {
			t.Errorf("EtherFloat(%v).Ether() = %v", eth, got)
		}
	}
}

func TestWeiTextRoundTrip(t *testing.T) {
	w := Ether(123).Add(NewWei(456))
	text, err := w.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Wei
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back.Cmp(w) != 0 {
		t.Errorf("round trip mismatch: %s vs %s", back, w)
	}
}

func TestWeiUnmarshalRejectsGarbage(t *testing.T) {
	var w Wei
	for _, bad := range []string{"", "abc", "-5", "1.5"} {
		if err := w.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("UnmarshalText(%q) succeeded", bad)
		}
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := NewWei(int64(a)), NewWei(int64(b))
		return x.Add(y).Cmp(y.Add(x)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := NewWei(int64(a)), NewWei(int64(b))
		return x.Add(y).Sub(y).Cmp(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGweiScale(t *testing.T) {
	if Gwei(1_000_000_000).Cmp(Ether(1)) != 0 {
		t.Error("1e9 gwei != 1 ether")
	}
}
