// Package etherscan reimplements the slice of the Etherscan API the paper's
// transaction crawl depends on: the account txlist endpoint with
// startblock/page/offset paging, per-key rate limiting, and the label lists
// (Coinbase and other custodial addresses) the paper sources from
// Etherscan. The client side implements the polite-crawler loop: token
// bucket pacing, retry on rate-limit errors, and startblock cursor paging
// past the result-window cap.
package etherscan

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/httpjson"
)

// API behaviour constants (mirroring etherscan.io).
const (
	// MaxOffset is the maximum rows per page.
	MaxOffset = 10000
	// MaxWindow is the deepest row reachable with page*offset paging;
	// beyond it clients must advance startblock.
	MaxWindow = 10000
	// DefaultRatePerSecond is the per-key request budget.
	DefaultRatePerSecond = 5
	// maxBuckets caps the rate-limiter table. API keys are
	// client-chosen strings, so without a cap a key-churning client
	// grows the table without limit; at the cap the stalest bucket is
	// recycled, which only ever hands tokens back to a key idle longer
	// than every active one.
	maxBuckets = 4096
)

// TxRecord is one row of a txlist response, JSON-shaped like Etherscan's.
type TxRecord struct {
	BlockNumber string `json:"blockNumber"`
	TimeStamp   string `json:"timeStamp"`
	Hash        string `json:"hash"`
	From        string `json:"from"`
	To          string `json:"to"`
	Value       string `json:"value"`
	IsError     string `json:"isError"`
	Method      string `json:"functionName,omitempty"`
}

// envelope is the generic decode target (client side); the server
// serializes through the typed stringEnvelope/txEnvelope below so the
// result is marshaled exactly once.
type envelope struct {
	Status  string          `json:"status"`
	Message string          `json:"message"`
	Result  json.RawMessage `json:"result"`
}

type stringEnvelope struct {
	Status  string `json:"status"`
	Message string `json:"message"`
	Result  string `json:"result"`
}

type txEnvelope struct {
	Status  string     `json:"status"`
	Message string     `json:"message"`
	Result  []TxRecord `json:"result"`
}

// Labels is the custodial label data the /labels endpoint serves.
type Labels struct {
	Coinbase       []string `json:"coinbase"`
	OtherCustodial []string `json:"otherCustodial"`
}

// Server serves a chain's transactions through an Etherscan-shaped API.
type Server struct {
	chain  *chain.Chain
	labels Labels
	rate   int
	log    *slog.Logger

	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
}

type bucket struct {
	tokens float64
	last   time.Time
}

// errWindowTooLarge is formatted once: the message is constant per
// build, and the paging-validation path is hit by every deep crawl.
var errWindowTooLarge = "Result window is too large, PageNo x Offset size must be less than or equal to " + strconv.Itoa(MaxWindow)

// NewServer wraps a chain. rate is requests/second/key; <= 0 uses the
// default. The labels are served verbatim on /labels.
func NewServer(c *chain.Chain, labels Labels, rate int, logger *slog.Logger) *Server {
	if rate <= 0 {
		rate = DefaultRatePerSecond
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Server{chain: c, labels: labels, rate: rate, log: logger, buckets: map[string]*bucket{}}
}

// allow consumes one token from the key's bucket.
func (s *Server) allow(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[key]
	now := time.Now()
	if !ok {
		if len(s.buckets) >= maxBuckets {
			s.evictStalestLocked()
		}
		b = &bucket{tokens: float64(s.rate), last: now}
		s.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * float64(s.rate)
	b.last = now
	if b.tokens > float64(s.rate) {
		b.tokens = float64(s.rate)
	}
	if b.tokens < 1 {
		m().serverRateLimited.Inc()
		return false
	}
	b.tokens--
	return true
}

// evictStalestLocked drops the bucket with the oldest refill time.
// Called with s.mu held, only on the new-key path at capacity, so the
// linear scan prices the attack (key churn), not the steady state.
func (s *Server) evictStalestLocked() {
	var stalest string
	var stalestAt time.Time
	first := true
	for key, b := range s.buckets {
		if first || b.last.Before(stalestAt) {
			stalest, stalestAt, first = key, b.last, false
		}
	}
	if !first {
		delete(s.buckets, stalest)
	}
}

// ServeHTTP implements http.Handler for /api and /labels.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/labels":
		// A failed response write means the client is gone; nothing to repair.
		_ = httpjson.Write(w, http.StatusOK, s.labels)
	case "/api":
		s.serveAPI(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) serveAPI(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key := q.Get("apikey")
	if !s.allow(key) {
		// Rate-limit answers ride on HTTP 200 (Etherscan's quirk), so a
		// naive response cache would happily serve "NOTOK" to clients
		// whose budget has long refilled. no-store keeps them out.
		w.Header().Set("Cache-Control", "no-store")
		writeEnvelope(w, "0", "NOTOK", "Max rate limit reached")
		return
	}
	if q.Get("module") != "account" {
		writeEnvelope(w, "0", "NOTOK", "Error! Missing or invalid module")
		return
	}
	switch q.Get("action") {
	case "txlist":
		s.serveTxList(w, r)
	case "balance":
		addr, err := ethtypes.ParseAddress(q.Get("address"))
		if err != nil {
			writeEnvelope(w, "0", "NOTOK", "Error! Invalid address format")
			return
		}
		writeEnvelope(w, "1", "OK", s.chain.BalanceOf(addr).BigInt().String())
	default:
		writeEnvelope(w, "0", "NOTOK", "Error! Missing or invalid action")
	}
}

func (s *Server) serveTxList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	get := func(k string) string {
		if v, ok := q[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	addr, err := ethtypes.ParseAddress(get("address"))
	if err != nil {
		writeEnvelope(w, "0", "NOTOK", "Error! Invalid address format")
		return
	}
	startBlock := parseUint(get("startblock"), 0)
	endBlock := parseUint(get("endblock"), 1<<62)
	page := int(parseUint(get("page"), 1))
	offset := int(parseUint(get("offset"), 100))
	if offset <= 0 || offset > MaxOffset {
		writeEnvelope(w, "0", "NOTOK", "Error! Invalid offset")
		return
	}
	if page <= 0 || page*offset > MaxWindow {
		writeEnvelope(w, "0", "NOTOK", errWindowTooLarge)
		return
	}

	txs := s.chain.TxsByAddress(addr)
	sort.SliceStable(txs, func(i, j int) bool { return txs[i].BlockNumber < txs[j].BlockNumber })
	var rows []TxRecord
	skip := (page - 1) * offset
	ctx := r.Context()
	for i, tx := range txs {
		// The request context carries the route/client deadline; a scan
		// whose requester has given up must not run to completion.
		if i%1024 == 0 && ctx.Err() != nil {
			http.Error(w, "deadline exceeded", http.StatusServiceUnavailable)
			return
		}
		if tx.BlockNumber < startBlock || tx.BlockNumber > endBlock {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		rows = append(rows, toRecord(tx))
		if len(rows) >= offset {
			break
		}
	}
	if len(rows) == 0 {
		writeResult(w, "0", "No transactions found", []TxRecord{})
		return
	}
	writeResult(w, "1", "OK", rows)
}

func toRecord(tx *chain.Transaction) TxRecord {
	isErr := "0"
	if tx.Failed {
		isErr = "1"
	}
	rec := TxRecord{
		BlockNumber: strconv.FormatUint(tx.BlockNumber, 10),
		TimeStamp:   strconv.FormatInt(tx.Timestamp, 10),
		Hash:        tx.Hash.Hex(),
		From:        "0x" + hexLower(tx.From),
		To:          "0x" + hexLower(tx.To),
		Value:       tx.Value.BigInt().String(),
		IsError:     isErr,
		Method:      tx.Method,
	}
	return rec
}

func hexLower(a ethtypes.Address) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 40)
	for i, b := range a {
		out[2*i] = digits[b>>4]
		out[2*i+1] = digits[b&0x0f]
	}
	return string(out)
}

func parseUint(s string, def uint64) uint64 {
	if s == "" {
		return def
	}
	v, err := strconv.ParseUint(s, 10, 63)
	if err != nil {
		return def
	}
	return v
}

func writeEnvelope(w http.ResponseWriter, status, message, result string) {
	// A failed response write means the client is gone; nothing to repair.
	_ = httpjson.Write(w, http.StatusOK, &stringEnvelope{Status: status, Message: message, Result: result})
}

func writeResult(w http.ResponseWriter, status, message string, rows []TxRecord) {
	// A failed response write means the client is gone; nothing to repair.
	_ = httpjson.Write(w, http.StatusOK, &txEnvelope{Status: status, Message: message, Result: rows})
}
