package etherscan

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet holds the package's instrumentation handles.
type metricSet struct {
	clientRequests    *obs.Counter
	clientErrors      *obs.Counter
	clientRateLimited *obs.Counter
	clientPages       *obs.Counter
	clientRows        *obs.Counter
	serverRateLimited *obs.Counter
}

var metrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the package's instrumentation at reg (nil resets
// to obs.Default).
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	metrics.Store(&metricSet{
		clientRequests: reg.Counter("etherscan_client_requests_total",
			"API requests issued by the Etherscan client."),
		clientErrors: reg.Counter("etherscan_client_errors_total",
			"Transport or API errors seen by the Etherscan client."),
		clientRateLimited: reg.Counter("etherscan_client_ratelimited_total",
			"Responses carrying the server's rate-limit message."),
		clientPages: reg.Counter("etherscan_client_pages_total",
			"txlist pages fetched."),
		clientRows: reg.Counter("etherscan_client_rows_total",
			"Transaction rows received (before dedup)."),
		serverRateLimited: reg.Counter("etherscan_server_ratelimited_total",
			"Requests rejected by the server's per-key token bucket."),
	})
}

func m() *metricSet { return metrics.Load() }
