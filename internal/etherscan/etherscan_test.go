package etherscan

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/ethtypes"
)

const genesis = 1580515200

func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func buildChain(t *testing.T, txsPerAddr int) (*chain.Chain, []ethtypes.Address) {
	t.Helper()
	c := chain.New(genesis)
	addrs := []ethtypes.Address{
		ethtypes.DeriveAddress("es-alice"),
		ethtypes.DeriveAddress("es-bob"),
		ethtypes.DeriveAddress("es-carol"),
	}
	for _, a := range addrs {
		c.Mint(a, ethtypes.Ether(1000000))
	}
	ts := int64(genesis)
	for i := 0; i < txsPerAddr; i++ {
		ts += 12
		if _, err := c.Transfer(ts, addrs[0], addrs[1], ethtypes.NewWei(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	ts += 12
	if _, err := c.Transfer(ts, addrs[2], addrs[0], ethtypes.Ether(1)); err != nil {
		t.Fatal(err)
	}
	return c, addrs
}

func newTestServer(t *testing.T, c *chain.Chain) *httptest.Server {
	t.Helper()
	labels := Labels{
		Coinbase:       []string{"0x1111111111111111111111111111111111111111"},
		OtherCustodial: []string{"0x2222222222222222222222222222222222222222"},
	}
	// Very high rate so ordinary tests never trip the limiter.
	srv := httptest.NewServer(NewServer(c, labels, 1_000_000, nil))
	t.Cleanup(srv.Close)
	return srv
}

func TestTxListRoundTrip(t *testing.T) {
	c, addrs := buildChain(t, 25)
	srv := newTestServer(t, c)
	client := NewClient(srv.URL, "test-key")
	client.MinInterval = 0
	client.PageSize = 7 // force several pages

	rows, err := client.TxList(context.Background(), addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	want := c.TxsByAddress(addrs[0])
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Hash != want[i].Hash.Hex() {
			t.Fatalf("row %d hash mismatch", i)
		}
		if r.Value != want[i].Value.BigInt().String() {
			t.Fatalf("row %d value mismatch: %s vs %s", i, r.Value, want[i].Value)
		}
		if r.IsError != "0" {
			t.Fatalf("row %d marked error", i)
		}
	}
}

func TestTxListEmptyAddress(t *testing.T) {
	c, _ := buildChain(t, 2)
	srv := newTestServer(t, c)
	client := NewClient(srv.URL, "k")
	client.MinInterval = 0
	rows, err := client.TxList(context.Background(), ethtypes.DeriveAddress("nobody"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("got %d rows for inactive address", len(rows))
	}
}

func TestStartBlockWindowPaging(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >10k-tx address")
	}
	// An address with more transactions than the page window forces the
	// client to advance startblock.
	c := chain.New(genesis)
	whale := ethtypes.DeriveAddress("whale")
	sink := ethtypes.DeriveAddress("sink")
	c.Mint(whale, ethtypes.Ether(10_000_000))
	ts := int64(genesis)
	const n = MaxWindow + 500
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			ts += 12 // several txs share blocks, exercising boundary dedup
		}
		if _, err := c.Transfer(ts, whale, sink, ethtypes.NewWei(1)); err != nil {
			t.Fatal(err)
		}
	}
	srv := newTestServer(t, c)
	client := NewClient(srv.URL, "k")
	client.MinInterval = 0
	client.PageSize = MaxOffset

	rows, err := client.TxList(context.Background(), whale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Errorf("got %d rows, want %d", len(rows), n)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Hash] {
			t.Fatal("duplicate row after window paging")
		}
		seen[r.Hash] = true
	}
}

func TestServerRateLimit(t *testing.T) {
	c, addrs := buildChain(t, 1)
	labels := Labels{}
	srv := httptest.NewServer(NewServer(c, labels, 2, nil))
	defer srv.Close()

	get := func() *envelope {
		resp, err := http.Get(srv.URL + "/api?module=account&action=txlist&address=0x" + hexLower(addrs[0]) + "&apikey=K")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return &env
	}
	limited := false
	for i := 0; i < 10; i++ {
		if env := get(); env.Message == "NOTOK" {
			limited = true
			break
		}
	}
	if !limited {
		t.Error("burst of 10 requests never rate-limited at 2 rps")
	}
}

func TestClientRetriesRateLimit(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("/api", func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 3 {
			writeEnvelope(w, "0", "NOTOK", "Max rate limit reached")
			return
		}
		writeResult(w, "1", "OK", []TxRecord{{Hash: "0xaa", BlockNumber: "1", Value: "5"}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := NewClient(srv.URL, "k")
	client.MinInterval = 0
	client.Sleep = instantSleep
	rows, err := client.TxList(context.Background(), ethtypes.DeriveAddress("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || calls != 4 {
		t.Errorf("rows=%d calls=%d", len(rows), calls)
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api", func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, "0", "NOTOK", "Max rate limit reached")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := NewClient(srv.URL, "k")
	client.MinInterval = 0
	client.MaxRetries = 2
	client.Sleep = instantSleep
	_, err := client.TxList(context.Background(), ethtypes.DeriveAddress("x"))
	if !errors.Is(err, ErrRateLimited) {
		t.Errorf("err = %v, want ErrRateLimited", err)
	}
}

// TestNOTOKRateLimitFeedsAdaptive pins the classification order in the
// retry closure: an HTTP-200 "Max rate limit reached" envelope must
// reach the adaptive controller as a shed (halving its rate), not as a
// clean response that speeds it up.
func TestNOTOKRateLimitFeedsAdaptive(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api", func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, "0", "NOTOK", "Max rate limit reached")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := NewClient(srv.URL, "k")
	client.MinInterval = 0
	client.MaxRetries = 2
	client.Sleep = instantSleep
	client.Adaptive = crawler.NewAdaptive(crawler.AdaptiveConfig{
		Source:      "test",
		InitialRate: 8,
		Sleep:       instantSleep,
	})
	_, err := client.TxList(context.Background(), ethtypes.DeriveAddress("x"))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if sheds := client.Adaptive.Sheds(); sheds == 0 {
		t.Error("adaptive controller saw no sheds from NOTOK rate limits")
	}
	if rate := client.Adaptive.Rate(); rate >= 8 {
		t.Errorf("adaptive rate = %v after sustained rate limiting, want < 8", rate)
	}
}

func TestClientSurfacesAPIErrors(t *testing.T) {
	c, _ := buildChain(t, 1)
	srv := newTestServer(t, c)
	// Raw request with a bad address.
	resp, err := http.Get(srv.URL + "/api?module=account&action=txlist&address=nothex&apikey=k")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	json.NewDecoder(resp.Body).Decode(&env)
	if env.Message != "NOTOK" {
		t.Errorf("bad address message = %q", env.Message)
	}
}

func TestBalanceAction(t *testing.T) {
	c, addrs := buildChain(t, 0)
	srv := newTestServer(t, c)
	resp, err := http.Get(srv.URL + "/api?module=account&action=balance&address=0x" + hexLower(addrs[0]) + "&apikey=k")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	json.NewDecoder(resp.Body).Decode(&env)
	var bal string
	json.Unmarshal(env.Result, &bal)
	if bal != c.BalanceOf(addrs[0]).BigInt().String() {
		t.Errorf("balance = %s", bal)
	}
}

func TestFetchLabels(t *testing.T) {
	c, _ := buildChain(t, 0)
	srv := newTestServer(t, c)
	client := NewClient(srv.URL, "k")
	labels, err := client.FetchLabels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels.Coinbase) != 1 || len(labels.OtherCustodial) != 1 {
		t.Errorf("labels = %+v", labels)
	}
}

func TestResultWindowError(t *testing.T) {
	c, addrs := buildChain(t, 1)
	srv := newTestServer(t, c)
	v := url.Values{
		"module": {"account"}, "action": {"txlist"},
		"address": {"0x" + hexLower(addrs[0])},
		"page":    {strconv.Itoa(3)}, "offset": {strconv.Itoa(MaxOffset)},
		"apikey": {"k"},
	}
	resp, err := http.Get(srv.URL + "/api?" + v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	json.NewDecoder(resp.Body).Decode(&env)
	var msg string
	json.Unmarshal(env.Result, &msg)
	if env.Message != "NOTOK" || msg == "" {
		t.Errorf("window error not reported: %+v", env)
	}
}

func TestTxListPageTwoMatchesSlice(t *testing.T) {
	c, addrs := buildChain(t, 30)
	srv := newTestServer(t, c)

	fetch := func(page, offset int) []TxRecord {
		t.Helper()
		v := url.Values{
			"module": {"account"}, "action": {"txlist"},
			"address": {"0x" + hexLower(addrs[0])},
			"sort":    {"asc"},
			"page":    {strconv.Itoa(page)}, "offset": {strconv.Itoa(offset)},
			"apikey": {"k"},
		}
		resp, err := http.Get(srv.URL + "/api?" + v.Encode())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		var rows []TxRecord
		json.Unmarshal(env.Result, &rows)
		return rows
	}

	all := fetch(1, 100)
	page2 := fetch(2, 10)
	if len(page2) != 10 {
		t.Fatalf("page 2 rows = %d", len(page2))
	}
	for i, r := range page2 {
		if r.Hash != all[10+i].Hash {
			t.Fatalf("page 2 row %d = %s, want %s", i, r.Hash, all[10+i].Hash)
		}
	}
	// A page past the data is empty with the no-transactions message.
	if rows := fetch(9, 10); len(rows) != 0 {
		t.Errorf("page beyond data returned %d rows", len(rows))
	}
}

func TestStartEndBlockFilter(t *testing.T) {
	c, addrs := buildChain(t, 20)
	srv := newTestServer(t, c)
	all := c.TxsByAddress(addrs[0])
	mid := all[10].BlockNumber

	v := url.Values{
		"module": {"account"}, "action": {"txlist"},
		"address":    {"0x" + hexLower(addrs[0])},
		"startblock": {strconv.FormatUint(mid, 10)},
		"endblock":   {strconv.FormatUint(mid, 10)},
		"offset":     {"100"},
		"apikey":     {"k"},
	}
	resp, err := http.Get(srv.URL + "/api?" + v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	json.NewDecoder(resp.Body).Decode(&env)
	var rows []TxRecord
	json.Unmarshal(env.Result, &rows)
	for _, r := range rows {
		if r.BlockNumber != strconv.FormatUint(mid, 10) {
			t.Fatalf("row outside block filter: %s", r.BlockNumber)
		}
	}
	if len(rows) == 0 {
		t.Error("block filter returned nothing")
	}
}
