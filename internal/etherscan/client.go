package etherscan

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/trace"
)

// Client is a polite Etherscan API client: it paces requests under the
// per-key rate limit, retries transient failures with backoff, and pages
// through large accounts by advancing startblock past the result-window
// cap — the mechanics behind the paper's 9.7M-transaction crawl. Pacing
// and retries run through the crawler package, so its rate-limiter wait
// and retry metrics cover this client. Safe for concurrent use.
type Client struct {
	// BaseURL is the server root (no trailing /api).
	BaseURL string
	// APIKey identifies the rate-limit bucket.
	APIKey string
	// HTTPClient defaults to a 30s-timeout client.
	HTTPClient *http.Client
	// PageSize rows per request; defaults to 1000.
	PageSize int
	// MinInterval between requests; defaults to 1/DefaultRatePerSecond.
	// Zero disables pacing.
	MinInterval time.Duration
	// MaxRetries per request on rate-limit or transport errors.
	MaxRetries int
	// Sleep is indirected for tests; defaults to a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Breaker, when set, circuit-breaks requests to this source: a run
	// of transport failures opens it and requests fail fast (with a
	// retryable cooldown hint) until a probe succeeds.
	Breaker *crawler.Breaker
	// Adaptive, when set, replaces MinInterval pacing with AIMD control:
	// it paces and bounds in-flight requests from server feedback
	// (429/503 + Retry-After, latency).
	Adaptive *crawler.Adaptive
	// Budget, when set, caps retry amplification: retries draw tokens
	// refilled by successful first attempts, and a dry budget fails fast
	// instead of hammering a broadly failing source.
	Budget *crawler.RetryBudget
	// Hedger, when set, duplicates idempotent GETs whose first attempt
	// outlives the tail-latency estimate, taking the first answer. It is
	// gated off while the breaker is not closed or the budget is low.
	Hedger *crawler.Hedger
	// ClientID, when non-empty, is sent as X-Client-ID so server-side
	// per-client quotas key on a stable identity.
	ClientID string

	mu          sync.Mutex
	lim         *crawler.Limiter
	limInterval time.Duration
}

// NewClient returns a client with defaults.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{
		BaseURL:     baseURL,
		APIKey:      apiKey,
		HTTPClient:  &http.Client{Timeout: 30 * time.Second},
		PageSize:    1000,
		MinInterval: time.Second / DefaultRatePerSecond,
		MaxRetries:  6,
	}
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ErrRateLimited is wrapped by errors returned when the server keeps
// answering with its rate-limit message after all retries.
var ErrRateLimited = fmt.Errorf("etherscan: rate limited")

// limiter returns the pacing limiter for the current MinInterval,
// rebuilding it when the interval changes (callers tune MinInterval
// after NewClient, before crawling). Nil means pacing is disabled.
func (c *Client) limiter() *crawler.Limiter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.MinInterval <= 0 {
		c.lim, c.limInterval = nil, 0
		return nil
	}
	if c.lim == nil || c.limInterval != c.MinInterval {
		c.lim = crawler.NewLimiter(float64(time.Second)/float64(c.MinInterval), 1)
		c.limInterval = c.MinInterval
	}
	return c.lim
}

// call performs one API request with pacing and retries, returning the raw
// result payload.
func (c *Client) call(ctx context.Context, params url.Values) (json.RawMessage, error) {
	params.Set("apikey", c.APIKey)
	endpoint := strings.TrimSuffix(c.BaseURL, "/") + "/api?" + params.Encode()

	// One logical API call is one span; its retry attempts become child
	// spans under it, and the traceparent each attempt sends ties the
	// server-side request records into the same stored trace.
	ctx, sp := trace.Start(ctx, "etherscan.call")
	if sp != nil {
		sp.Annotate("module", params.Get("module"))
		sp.Annotate("action", params.Get("action"))
	}

	attempts := c.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	cfg := crawler.RetryConfig{
		Attempts:  attempts,
		BaseDelay: 200 * time.Millisecond,
		MaxDelay:  10 * time.Second,
		Sleep:     c.Sleep,
		Budget:    c.Budget,
	}
	var result json.RawMessage
	err := crawler.Retry(ctx, cfg, func(ctx context.Context) error {
		if b := c.Breaker; b != nil {
			if err := b.Allow(); err != nil {
				return err
			}
		}
		if a := c.Adaptive; a != nil {
			if err := a.Wait(ctx); err != nil {
				return crawler.Permanent(err)
			}
			if err := a.Acquire(ctx); err != nil {
				return crawler.Permanent(err)
			}
		} else if lim := c.limiter(); lim != nil {
			if err := lim.Wait(ctx); err != nil {
				return crawler.Permanent(err)
			}
		}
		m().clientRequests.Inc()
		start := time.Now()
		// The GET is idempotent, so it may be hedged: a duplicate fires
		// if this attempt outlives the tail-latency estimate, and the
		// first answer wins. The pair runs under the single Adaptive
		// slot already acquired — hedge volume is bounded by the retry
		// budget, not the AIMD window.
		env, err := crawler.Hedge(ctx, c.Hedger, func(ctx context.Context) (*envelope, error) {
			return c.doOnce(ctx, endpoint)
		})
		// Classify NOTOK envelopes before Observe/Record: an HTTP-200
		// "Max rate limit reached" is Etherscan's 429, and the adaptive
		// controller and breaker must see it as a shed, not a success.
		if err == nil && env.Message == "NOTOK" {
			var msg string
			_ = json.Unmarshal(env.Result, &msg)
			if strings.Contains(msg, "rate limit") {
				m().clientRateLimited.Inc()
				err = crawler.RetryAfter(fmt.Errorf("%w: %s", ErrRateLimited, msg), 0)
			} else {
				m().clientErrors.Inc()
				err = crawler.Permanent(fmt.Errorf("etherscan: API error: %s", msg))
			}
		} else if err != nil {
			m().clientErrors.Inc()
		}
		if a := c.Adaptive; a != nil {
			a.Release()
			a.Observe(err, time.Since(start))
		}
		if b := c.Breaker; b != nil {
			b.Record(err)
		}
		if err != nil {
			return err
		}
		result = env.Result
		return nil
	})
	sp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return result, nil
}

func (c *Client) doOnce(ctx context.Context, endpoint string) (*envelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint, nil)
	if err != nil {
		return nil, err
	}
	overload.SetRequestHeaders(req, c.ClientID)
	trace.Inject(req)
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("etherscan: HTTP %d", resp.StatusCode)
		if d, ok := crawler.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return nil, crawler.RetryAfter(err, d)
		}
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("etherscan: decode: %w", err)
	}
	return &env, nil
}

// TxList retrieves the complete transaction list of an address, walking
// startblock forward whenever the page window is exhausted.
func (c *Client) TxList(ctx context.Context, addr ethtypes.Address) ([]TxRecord, error) {
	pageSize := c.PageSize
	if pageSize <= 0 || pageSize > MaxOffset {
		pageSize = 1000
	}
	var out []TxRecord
	startBlock := uint64(0)
	seen := map[string]bool{}
	for {
		var gotAny bool
		maxPages := MaxWindow / pageSize
		for page := 1; page <= maxPages; page++ {
			params := url.Values{
				"module":     {"account"},
				"action":     {"txlist"},
				"address":    {"0x" + hexLower(addr)},
				"startblock": {strconv.FormatUint(startBlock, 10)},
				"sort":       {"asc"},
				"page":       {strconv.Itoa(page)},
				"offset":     {strconv.Itoa(pageSize)},
			}
			raw, err := c.call(ctx, params)
			if err != nil {
				return nil, fmt.Errorf("txlist %s from block %d: %w", addr, startBlock, err)
			}
			var rows []TxRecord
			if err := json.Unmarshal(raw, &rows); err != nil {
				return nil, fmt.Errorf("txlist decode: %w", err)
			}
			m().clientPages.Inc()
			m().clientRows.Add(uint64(len(rows)))
			for _, r := range rows {
				// Block-boundary re-reads can duplicate rows; the hash
				// dedups them.
				if !seen[r.Hash] {
					seen[r.Hash] = true
					out = append(out, r)
				}
			}
			gotAny = gotAny || len(rows) > 0
			if len(rows) < pageSize {
				return out, nil
			}
		}
		if !gotAny {
			return out, nil
		}
		// Window exhausted: restart from the last seen block (inclusive,
		// to catch blocks split across the window edge).
		last := out[len(out)-1]
		lb, err := strconv.ParseUint(last.BlockNumber, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("txlist: bad block number %q", last.BlockNumber)
		}
		if lb == startBlock {
			return nil, fmt.Errorf("txlist: address %s has more than %d transactions in block %d", addr, MaxWindow, lb)
		}
		startBlock = lb
	}
}

// FetchLabels retrieves the custodial label lists, with the same retry
// and breaker treatment as API calls — a transient failure on this one
// request must not abort a crawl.
func (c *Client) FetchLabels(ctx context.Context) (Labels, error) {
	attempts := c.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	cfg := crawler.RetryConfig{
		Attempts:  attempts,
		BaseDelay: 200 * time.Millisecond,
		MaxDelay:  10 * time.Second,
		Sleep:     c.Sleep,
		Budget:    c.Budget,
	}
	ctx, sp := trace.Start(ctx, "etherscan.labels")
	var labels Labels
	err := crawler.Retry(ctx, cfg, func(ctx context.Context) error {
		if b := c.Breaker; b != nil {
			if err := b.Allow(); err != nil {
				return err
			}
		}
		if a := c.Adaptive; a != nil {
			if err := a.Wait(ctx); err != nil {
				return crawler.Permanent(err)
			}
			if err := a.Acquire(ctx); err != nil {
				return crawler.Permanent(err)
			}
		}
		var err error
		start := time.Now()
		labels, err = crawler.Hedge(ctx, c.Hedger, func(ctx context.Context) (Labels, error) {
			return c.fetchLabelsOnce(ctx)
		})
		if a := c.Adaptive; a != nil {
			a.Release()
			a.Observe(err, time.Since(start))
		}
		if b := c.Breaker; b != nil {
			b.Record(err)
		}
		return err
	})
	sp.EndErr(err)
	return labels, err
}

func (c *Client) fetchLabelsOnce(ctx context.Context) (Labels, error) {
	endpoint := strings.TrimSuffix(c.BaseURL, "/") + "/labels"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint, nil)
	if err != nil {
		return Labels{}, crawler.Permanent(err)
	}
	overload.SetRequestHeaders(req, c.ClientID)
	trace.Inject(req)
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return Labels{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("etherscan: labels HTTP %d", resp.StatusCode)
		if d, ok := crawler.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return Labels{}, crawler.RetryAfter(err, d)
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return Labels{}, crawler.Permanent(err)
		}
		return Labels{}, err
	}
	var labels Labels
	if err := json.NewDecoder(resp.Body).Decode(&labels); err != nil {
		// Truncated or garbled payloads are transient: re-fetch.
		return Labels{}, fmt.Errorf("etherscan: labels decode: %w", err)
	}
	return labels, nil
}
