package crawler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testBreaker returns a breaker on a fake clock the test can advance.
func testBreaker(t *testing.T, threshold int, cooldown time.Duration) (*Breaker, *time.Time) {
	t.Helper()
	withTestMetrics(t)
	now := time.Unix(0, 0)
	b := NewBreaker("test", threshold, cooldown)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := testBreaker(t, 3, time.Minute)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		b.Record(boom)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	b.Record(boom)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after %d failures", b.State(), 3)
	}
	err := b.Allow()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed: %v", err)
	}
	// The rejection carries a cooldown hint so Retry waits it out.
	var ra *RetryAfterError
	if !errors.As(err, &ra) || ra.After <= 0 || ra.After > time.Minute {
		t.Errorf("rejection hint = %v, want (0, 1m]", err)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, now := testBreaker(t, 1, time.Minute)
	b.Record(errors.New("boom"))
	if b.State() != BreakerOpen {
		t.Fatal("threshold 1 did not open")
	}
	*now = now.Add(time.Minute)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open rejected the probe: %v", err)
	}
	// A second caller while the probe is in flight is rejected.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second probe admitted: %v", err)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, now := testBreaker(t, 1, time.Minute)
	b.Record(errors.New("boom"))
	*now = now.Add(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errors.New("still down"))
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v", b.State())
	}
	// The cooldown restarts from the failed probe.
	*now = now.Add(30 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("reopened breaker admitted: %v", err)
	}
}

func TestBreakerNeutralAndPermanentOutcomes(t *testing.T) {
	b, _ := testBreaker(t, 2, time.Minute)
	// Context cancellations say nothing about source health.
	for i := 0; i < 10; i++ {
		b.Record(context.Canceled)
		b.Record(context.DeadlineExceeded)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("cancellations opened the breaker: %v", b.State())
	}
	// A permanent API error means the source answered: it resets the
	// failure run like a success.
	b.Record(errors.New("transport down"))
	b.Record(Permanent(errors.New("bad request")))
	b.Record(errors.New("transport down"))
	if b.State() != BreakerClosed {
		t.Fatal("permanent error did not reset the failure run")
	}
}

func TestBreakerDo(t *testing.T) {
	b, now := testBreaker(t, 1, time.Minute)
	boom := errors.New("boom")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Do = %v, want fast rejection", err)
	}
	*now = now.Add(time.Minute)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe Do = %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v", b.State())
	}
}

// Half-open audit (run with -race): however many goroutines race for
// the probe slot, exactly one is admitted, and the slot is handed on
// when the probe's outcome is neutral.
func TestBreakerHalfOpenAdmitsExactlyOneConcurrentProbe(t *testing.T) {
	b, now := testBreaker(t, 1, time.Minute)
	b.Record(errors.New("boom")) // threshold 1: straight to open
	*now = now.Add(time.Minute)  // cooldown elapses -> half-open

	const racers = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() == nil {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}

	// A neutral outcome (context cancellation says nothing about source
	// health) frees the slot for the next caller; a second probe is then
	// admitted, again exactly once.
	b.Record(context.Canceled)
	admitted.Store(0)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() == nil {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("after neutral probe outcome, %d probes admitted, want exactly 1", got)
	}

	// The successful probe closes the circuit for everyone.
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe", b.State())
	}
}
