package crawler

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ensdropcatch/internal/leakcheck"
)

// warmHedger returns a hedger whose estimator has seen enough fast
// successes that a slow primary will trigger a hedge quickly.
func warmHedger(cfg HedgeConfig) *Hedger {
	if cfg.Source == "" {
		cfg.Source = "test"
	}
	if cfg.MinDelay == 0 {
		cfg.MinDelay = 5 * time.Millisecond
	}
	h := NewHedger(cfg)
	for i := 0; i < 20; i++ {
		h.Observe(time.Millisecond)
	}
	return h
}

func TestHedgeWinsOnSlowPrimary(t *testing.T) {
	leakcheck.Check(t)
	h := warmHedger(HedgeConfig{})
	var calls atomic.Int64
	got, err := Hedge(context.Background(), h, func(ctx context.Context) (string, error) {
		if calls.Add(1) == 1 {
			// Slow primary: parks until the winner cancels it.
			<-ctx.Done()
			return "", ctx.Err()
		}
		return "hedged", nil
	})
	if err != nil || got != "hedged" {
		t.Fatalf("Hedge = (%q, %v), want hedged answer", got, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

func TestHedgeFastPrimaryNeverHedges(t *testing.T) {
	leakcheck.Check(t)
	h := warmHedger(HedgeConfig{MinDelay: 50 * time.Millisecond})
	var calls atomic.Int64
	got, err := Hedge(context.Background(), h, func(ctx context.Context) (int, error) {
		calls.Add(1)
		return 7, nil
	})
	if err != nil || got != 7 {
		t.Fatalf("Hedge = (%d, %v)", got, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("fast primary still hedged: %d calls", calls.Load())
	}
}

func TestHedgeGates(t *testing.T) {
	leakcheck.Check(t)
	slowThenFast := func(calls *atomic.Int64) func(context.Context) (int, error) {
		return func(ctx context.Context) (int, error) {
			if calls.Add(1) == 1 {
				select {
				case <-time.After(100 * time.Millisecond):
				case <-ctx.Done():
					return 0, ctx.Err()
				}
				return 1, nil
			}
			return 2, nil
		}
	}

	t.Run("cold estimator", func(t *testing.T) {
		h := NewHedger(HedgeConfig{Source: "test", MinDelay: 5 * time.Millisecond})
		var calls atomic.Int64
		if v, err := Hedge(context.Background(), h, slowThenFast(&calls)); err != nil || v != 1 {
			t.Fatalf("Hedge = (%d, %v)", v, err)
		}
		if calls.Load() != 1 {
			t.Fatalf("cold hedger hedged anyway: %d calls", calls.Load())
		}
	})

	t.Run("breaker not closed", func(t *testing.T) {
		br := NewBreaker("test", 1, time.Hour)
		br.Record(errors.New("boom")) // trips open
		h := warmHedger(HedgeConfig{Breaker: br})
		var calls atomic.Int64
		if v, err := Hedge(context.Background(), h, slowThenFast(&calls)); err != nil || v != 1 {
			t.Fatalf("Hedge = (%d, %v)", v, err)
		}
		if calls.Load() != 1 {
			t.Fatalf("hedged against an open breaker: %d calls", calls.Load())
		}
	})

	t.Run("budget low", func(t *testing.T) {
		budget := NewRetryBudget("test", 0.1, 1)
		budget.Withdraw() // drain
		h := warmHedger(HedgeConfig{Budget: budget})
		var calls atomic.Int64
		if v, err := Hedge(context.Background(), h, slowThenFast(&calls)); err != nil || v != 1 {
			t.Fatalf("Hedge = (%d, %v)", v, err)
		}
		if calls.Load() != 1 {
			t.Fatalf("hedged on a dry budget: %d calls", calls.Load())
		}
	})
}

// A hedge spends a retry-budget token, so speculative load and retry
// load share one cap.
func TestHedgeSpendsBudget(t *testing.T) {
	leakcheck.Check(t)
	budget := NewRetryBudget("test", 0.1, 5)
	h := warmHedger(HedgeConfig{Budget: budget})
	var calls atomic.Int64
	_, err := Hedge(context.Background(), h, func(ctx context.Context) (int, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if budget.Low() {
		t.Fatal("budget unexpectedly dry")
	}
	// 5 tokens minus one hedge = 4: three more withdrawals must succeed,
	// the fifth must fail.
	for i := 0; i < 4; i++ {
		if !budget.Withdraw() {
			t.Fatalf("withdrawal %d failed; hedge spent more than one token", i)
		}
	}
	if budget.Withdraw() {
		t.Fatal("hedge did not spend a token")
	}
}

func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	leakcheck.Check(t)
	h := warmHedger(HedgeConfig{})
	primary := errors.New("primary failure")
	hedged := errors.New("hedge failure")
	var calls atomic.Int64
	_, err := Hedge(context.Background(), h, func(ctx context.Context) (int, error) {
		if calls.Add(1) == 1 {
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
			}
			return 0, primary
		}
		return 0, hedged
	})
	if !errors.Is(err, primary) {
		t.Fatalf("err = %v, want the primary's error", err)
	}
}

func TestHedgeNilHedgerPassthrough(t *testing.T) {
	v, err := Hedge(context.Background(), nil, func(context.Context) (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("Hedge(nil) = (%d, %v)", v, err)
	}
}

func TestHedgeContextCancellation(t *testing.T) {
	leakcheck.Check(t)
	h := warmHedger(HedgeConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := Hedge(ctx, h, func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
