package crawler

import (
	"context"
	"errors"
	"testing"
	"time"
)

// newTestAdaptive builds a controller with an injectable clock whose
// sleeps advance the clock instead of blocking.
func newTestAdaptive(cfg AdaptiveConfig, now *time.Time) *Adaptive {
	cfg.Now = func() time.Time { return *now }
	cfg.Sleep = func(_ context.Context, d time.Duration) error {
		*now = now.Add(d)
		return nil
	}
	a := NewAdaptive(cfg)
	a.lim.now = cfg.Now
	a.lim.sleep = cfg.Sleep
	a.lim.last = *now
	return a
}

func TestAdaptiveIncreasesRateOnSuccess(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	a := newTestAdaptive(AdaptiveConfig{InitialRate: 2, Increase: 0.5, MaxRate: 3}, &now)

	a.Observe(nil, 10*time.Millisecond)
	if got := a.Rate(); got != 2.5 {
		t.Fatalf("rate = %v after one success, want 2.5", got)
	}
	// Additive increase saturates at MaxRate.
	for i := 0; i < 10; i++ {
		a.Observe(nil, 10*time.Millisecond)
	}
	if got := a.Rate(); got != 3 {
		t.Fatalf("rate = %v, want capped at MaxRate 3", got)
	}
}

func TestAdaptiveDecreasesOnShedAndHonorsPause(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	a := newTestAdaptive(AdaptiveConfig{InitialRate: 8, MinRate: 1, MaxWorkers: 8}, &now)

	shed := RetryAfter(errors.New("429"), 2*time.Second)
	a.Observe(shed, 5*time.Millisecond)
	if got := a.Rate(); got != 4 {
		t.Fatalf("rate = %v after shed, want halved to 4", got)
	}
	if got := a.Workers(); got != 4 {
		t.Fatalf("workers = %v after shed, want halved to 4", got)
	}
	if got := a.Sheds(); got != 1 {
		t.Fatalf("Sheds() = %d, want 1", got)
	}
	// Wait must sit out the server's 2s Retry-After hint.
	start := now
	if err := a.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if waited := now.Sub(start); waited < 2*time.Second {
		t.Fatalf("Wait advanced the clock %v, want >= 2s pause", waited)
	}
	// Repeated sheds floor at MinRate and MinWorkers.
	for i := 0; i < 10; i++ {
		a.Observe(shed, 0)
	}
	if got := a.Rate(); got != 1 {
		t.Fatalf("rate = %v after repeated sheds, want MinRate 1", got)
	}
	if got := a.Workers(); got != 1 {
		t.Fatalf("workers = %v after repeated sheds, want MinWorkers 1", got)
	}
}

func TestAdaptiveNeutralErrorsDoNotShrink(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	a := newTestAdaptive(AdaptiveConfig{InitialRate: 8}, &now)

	breakerErr := &RetryAfterError{Err: ErrBreakerOpen, After: time.Second}
	a.Observe(breakerErr, 0)
	a.Observe(context.Canceled, 0)
	a.Observe(context.DeadlineExceeded, 0)
	a.Observe(errors.New("connection reset"), 0)
	if got := a.Rate(); got != 8 {
		t.Fatalf("rate = %v after neutral errors, want unchanged 8", got)
	}
	if got := a.Sheds(); got != 0 {
		t.Fatalf("Sheds() = %d after neutral errors, want 0", got)
	}
}

func TestAdaptiveRampsWorkersOnCleanStreak(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	a := newTestAdaptive(AdaptiveConfig{InitialRate: 8, MaxWorkers: 4, RampSuccesses: 3}, &now)

	// Halve down to 2 workers, then earn one back with a 3-long streak.
	a.Observe(RetryAfter(errors.New("503"), 0), 0)
	if got := a.Workers(); got != 2 {
		t.Fatalf("workers = %v after shed, want 2", got)
	}
	for i := 0; i < 3; i++ {
		a.Observe(nil, time.Millisecond)
	}
	if got := a.Workers(); got != 3 {
		t.Fatalf("workers = %v after clean streak, want 3", got)
	}
	// A shed resets the streak: two successes, shed, two successes must
	// not ramp.
	a.Observe(nil, 0)
	a.Observe(nil, 0)
	a.Observe(RetryAfter(errors.New("503"), 0), 0)
	a.Observe(nil, 0)
	a.Observe(nil, 0)
	if got := a.Workers(); got != 1 {
		t.Fatalf("workers = %v, want 1 (streak must reset on shed)", got)
	}
}

func TestAdaptiveLatencyAboveTargetHoldsRate(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	a := newTestAdaptive(AdaptiveConfig{InitialRate: 4, LatencyTarget: 100 * time.Millisecond}, &now)

	a.Observe(nil, 300*time.Millisecond) // slow success: no increase
	if got := a.Rate(); got != 4 {
		t.Fatalf("rate = %v after slow success, want held at 4", got)
	}
	a.Observe(nil, 50*time.Millisecond) // fast success: increase resumes
	if got := a.Rate(); got <= 4 {
		t.Fatalf("rate = %v after fast success, want > 4", got)
	}
}

func TestAdaptiveAcquireBlocksAtWorkerCap(t *testing.T) {
	withTestMetrics(t)
	a := NewAdaptive(AdaptiveConfig{MinWorkers: 1, MaxWorkers: 2})

	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Third acquire blocks until a release.
	acquired := make(chan error, 1)
	go func() { acquired <- a.Acquire(context.Background()) }()
	select {
	case <-acquired:
		t.Fatal("third acquire did not block at a cap of 2")
	case <-time.After(50 * time.Millisecond):
	}
	a.Release()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked acquire never woke after release")
	}
	// Cancellation unblocks a waiter when the cap stays exhausted.
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() { blocked <- a.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-blocked; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
}

func TestAdaptivePublishesGauges(t *testing.T) {
	reg := withTestMetrics(t)
	a := NewAdaptive(AdaptiveConfig{Source: "etherscan", InitialRate: 6, MaxWorkers: 4})
	a.Observe(RetryAfter(errors.New("429"), 0), 0)

	if got := reg.GaugeVec("crawler_adaptive_rate", "", "source").With("etherscan").Value(); got != 3 {
		t.Errorf("crawler_adaptive_rate{etherscan} = %v, want 3", got)
	}
	if got := reg.GaugeVec("crawler_adaptive_workers", "", "source").With("etherscan").Value(); got != 2 {
		t.Errorf("crawler_adaptive_workers{etherscan} = %v, want 2", got)
	}
	if got := reg.CounterVec("crawler_adaptive_sheds_total", "", "source").With("etherscan").Value(); got != 1 {
		t.Errorf("crawler_adaptive_sheds_total{etherscan} = %v, want 1", got)
	}
}
