// Package crawler provides the generic machinery behind the paper's data
// collection (Figure 1): token-bucket rate limiting, retry with exponential
// backoff and jitter, bounded worker pools, and append-only checkpoints so
// multi-hour crawls resume where they stopped. It is transport-agnostic:
// the subgraph, Etherscan, and OpenSea clients plug into it.
package crawler

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/vfs"
)

// Limiter is a token-bucket rate limiter. The zero value is invalid; use
// NewLimiter. It is safe for concurrent use.
type Limiter struct {
	mu     sync.Mutex
	rate   float64          // tokens per second; guarded by mu
	burst  float64          // guarded by mu
	tokens float64          // guarded by mu
	last   time.Time        // guarded by mu
	now    func() time.Time // injectable clock for tests
	sleep  func(context.Context, time.Duration) error
}

// NewLimiter returns a limiter admitting rate events/second with the given
// burst capacity.
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		panic("crawler: non-positive rate")
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		last:   time.Now(),
		sleep:  defaultSleep,
	}
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SetRate retunes the limiter to rate events/second without dropping
// accrued tokens: the bucket is first refilled at the old rate up to
// now, so pacing history is preserved across the change. Non-positive
// rates are ignored. Safe to call while other goroutines Wait.
func (l *Limiter) SetRate(rate float64) {
	if rate <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.rate = rate
}

// Rate returns the current token refill rate in events/second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// Wait blocks until a token is available or the context is cancelled.
// Every call records its actual elapsed blocked time (zero when a token
// was free) in the crawler_ratelimit_wait_seconds histogram — measured
// from the clock, so a sleep cut short by context cancellation is not
// overstated.
func (l *Limiter) Wait(ctx context.Context) error {
	start := l.now()
	for {
		l.mu.Lock()
		now := l.now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		l.last = now
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			waited := l.now().Sub(start)
			m().ratelimitWait.Observe(waited.Seconds())
			// Only a real wait is worth a trace event; sub-millisecond
			// token grabs would drown the span in noise.
			if waited >= time.Millisecond {
				if sp := trace.FromContext(ctx); sp != nil {
					sp.Event("ratelimit.wait", trace.A("waited", waited.String()))
				}
			}
			return nil
		}
		need := (1 - l.tokens) / l.rate
		l.mu.Unlock()
		d := time.Duration(need * float64(time.Second))
		if err := l.sleep(ctx, d); err != nil {
			m().ratelimitWait.Observe(l.now().Sub(start).Seconds())
			return err
		}
	}
}

// RetryConfig controls Retry.
type RetryConfig struct {
	// Attempts is the maximum number of tries (>= 1).
	Attempts int
	// BaseDelay is the first backoff; each retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// Jitter in [0, 1] randomizes each delay by ±Jitter fraction.
	Jitter float64
	// RetryIf decides whether an error is transient; nil retries all.
	RetryIf func(error) bool
	// Sleep is injectable for tests.
	Sleep func(context.Context, time.Duration) error
	// Rand is the jitter source; nil uses a shared seeded source.
	Rand *rand.Rand
	// Budget, when set, bounds retry amplification: each retry withdraws
	// a token and a dry budget fails fast with ErrRetryBudgetExhausted
	// instead of backing off. Successful first attempts refill it.
	Budget *RetryBudget
}

// DefaultRetry is a sensible config for HTTP crawling.
func DefaultRetry() RetryConfig {
	return RetryConfig{Attempts: 5, BaseDelay: 200 * time.Millisecond, MaxDelay: 10 * time.Second, Jitter: 0.2}
}

// ErrPermanent wraps errors that Retry must not retry.
var ErrPermanent = errors.New("crawler: permanent error")

// Permanent marks err as non-retryable.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrPermanent, err)
}

// RetryAfterError carries a server-directed backoff hint (typically from
// a Retry-After header). Retry honors the hint in place of its own
// computed delay, still capped by MaxDelay.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// RetryAfter wraps err with a delay hint for Retry. A nil err returns
// nil. A non-positive delay marks the error as a shed signal that
// carries no stated delay: Retry keeps its computed backoff, and the
// adaptive controller still treats it as congestion.
func RetryAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	if after < 0 {
		after = 0
	}
	return &RetryAfterError{Err: err, After: after}
}

// maxRetryAfter caps server-directed backoff hints: anything longer is
// a nonsense horizon for a crawl (seconds form is rejected outright,
// date form is clamped — a far-future date still means "much later").
const maxRetryAfter = 24 * time.Hour

// ParseRetryAfter interprets a Retry-After header value as a delay,
// evaluating HTTP-dates against the wall clock. See ParseRetryAfterAt.
func ParseRetryAfter(v string) (time.Duration, bool) {
	return ParseRetryAfterAt(v, time.Now())
}

// ParseRetryAfterAt interprets a Retry-After header value as a delay
// relative to now. Both RFC 9110 forms are accepted: delay-seconds
// (integer per the RFC, fractional tolerated for test servers) and the
// HTTP-date form (per http.ParseTime). A date in the past means "retry
// now" (0, true); a date beyond the 24h sanity cap is clamped to it,
// while delay-seconds beyond the cap are rejected as nonsense.
func ParseRetryAfterAt(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs < 0 || secs > maxRetryAfter.Seconds() {
			return 0, false
		}
		return time.Duration(secs * float64(time.Second)), true
	}
	t, err := http.ParseTime(v)
	if err != nil {
		return 0, false
	}
	d := t.Sub(now)
	if d < 0 {
		return 0, true
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// sharedRand is the jitter source used when RetryConfig.Rand is nil,
// seeded once at startup and guarded for concurrent retries.
var (
	sharedRandMu sync.Mutex
	sharedRand   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// jitterFactor returns a multiplier in [1-j, 1+j] drawn from rng, or
// from the shared seeded source when rng is nil.
func jitterFactor(rng *rand.Rand, j float64) float64 {
	var u float64
	if rng != nil {
		u = rng.Float64()
	} else {
		sharedRandMu.Lock()
		u = sharedRand.Float64()
		sharedRandMu.Unlock()
	}
	return 1 + j*(2*u-1)
}

// Retry runs fn until it succeeds, exhausts cfg.Attempts, hits a permanent
// error, or the context is cancelled. fn receives a per-attempt context:
// when the calling context carries an active trace span, each attempt runs
// inside its own "retry.attempt" child span, so a stored trace shows every
// try with its outcome — breaker rejection, upstream shed, transport error —
// and the backoff sleeps between them. With tracing off the attempt context
// is ctx itself and nothing is allocated.
func Retry(ctx context.Context, cfg RetryConfig, fn func(context.Context) error) error {
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	delay := cfg.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		m().retryAttempts.Inc()
		actx := ctx
		var asp *trace.Span
		if trace.FromContext(ctx) != nil {
			actx, asp = trace.Start(ctx, "retry.attempt")
			asp.Annotate("attempt", strconv.Itoa(attempt))
		}
		err = fn(actx)
		if asp != nil {
			annotateAttemptError(asp, err)
			asp.End()
		}
		if err == nil {
			if cfg.Budget != nil && attempt == 1 {
				cfg.Budget.Deposit()
			}
			return nil
		}
		if errors.Is(err, ErrPermanent) {
			return err
		}
		if cfg.RetryIf != nil && !cfg.RetryIf(err) {
			return err
		}
		if attempt >= cfg.Attempts {
			m().retryExhausted.Inc()
			if sp := trace.FromContext(ctx); sp != nil {
				sp.Event("retry.exhausted", trace.A("attempts", strconv.Itoa(attempt)))
			}
			return fmt.Errorf("crawler: %d attempts exhausted: %w", attempt, err)
		}
		// A retry is about to be funded. A dry budget means the source is
		// failing broadly — retrying would multiply the pressure, so fail
		// fast instead (the breaker and AIMD handle the waiting).
		if cfg.Budget != nil && !cfg.Budget.Withdraw() {
			if sp := trace.FromContext(ctx); sp != nil {
				sp.Event("retry.budget_exhausted", trace.A("source", cfg.Budget.Source()))
			}
			return cfg.Budget.exhausted(err)
		}
		d := delay
		if cfg.Jitter > 0 {
			d = time.Duration(float64(d) * jitterFactor(cfg.Rand, cfg.Jitter))
		}
		// A server-directed hint (Retry-After, breaker cooldown)
		// overrides the computed backoff, jitter included. A zero
		// hint marks a shed with no stated delay (Etherscan's NOTOK
		// rate limit): the computed backoff stands.
		var ra *RetryAfterError
		if errors.As(err, &ra) && ra.After > 0 {
			d = ra.After
			if cfg.MaxDelay > 0 && d > cfg.MaxDelay {
				d = cfg.MaxDelay
			}
		}
		if sp := trace.FromContext(ctx); sp != nil {
			sp.Event("retry.backoff",
				trace.A("attempt", strconv.Itoa(attempt)),
				trace.A("delay", d.String()))
		}
		if err := sleep(ctx, d); err != nil {
			return err
		}
		delay *= 2
		if cfg.MaxDelay > 0 && delay > cfg.MaxDelay {
			delay = cfg.MaxDelay
		}
	}
}

// annotateAttemptError records a finished attempt's outcome on its span,
// naming the responsible layer: a local breaker rejection, a real
// upstream shed (429/503 with Retry-After semantics), a permanent API
// answer, or a plain transport error.
func annotateAttemptError(sp *trace.Span, err error) {
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, ErrBreakerOpen):
		var ra *RetryAfterError
		after := ""
		if errors.As(err, &ra) {
			after = ra.After.String()
		}
		sp.Error("breaker.rejected", trace.A("cooldown", after))
	case errors.Is(err, ErrPermanent):
		sp.Error("permanent", trace.A("message", err.Error()))
	default:
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			sp.Error("upstream.shed", trace.A("retry_after", ra.After.String()))
			return
		}
		sp.Error("error", trace.A("message", err.Error()))
	}
}

// FailurePolicy controls how a ForEach pool reacts to item errors.
// The zero value is fail-fast: the first error cancels outstanding work.
type FailurePolicy struct {
	// ContinueOnError keeps the pool running after item failures,
	// collecting every error instead of cancelling on the first.
	ContinueOnError bool
	// ErrorBudget bounds the tolerated failures when ContinueOnError is
	// set: once more than ErrorBudget items have failed the pool aborts
	// like fail-fast. 0 means unbounded.
	ErrorBudget int
}

// ItemError records the failure of one ForEach item by position, so a
// continue-on-error crawl can report exactly which items failed.
type ItemError struct {
	Index int
	Err   error
}

func (e *ItemError) Error() string { return fmt.Sprintf("item %d: %v", e.Index, e.Err) }

func (e *ItemError) Unwrap() error { return e.Err }

// ErrBudgetExhausted is joined into the ForEachPolicy result when a
// continue-on-error pool aborted because its error budget ran out.
var ErrBudgetExhausted = errors.New("crawler: error budget exhausted")

// ForEach processes items with the given concurrency and fail-fast
// semantics: the first error cancels outstanding work and is returned
// (joined with any other errors observed before cancellation took
// effect).
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(context.Context, T) error) error {
	return ForEachPolicy(ctx, workers, items, FailurePolicy{}, fn)
}

// ForEachPolicy processes items with the given concurrency under the
// given failure policy. Errors are returned joined, each wrapped in an
// *ItemError carrying the item's index.
func ForEachPolicy[T any](ctx context.Context, workers int, items []T, policy FailurePolicy, fn func(context.Context, T) error) error {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		index int
		item  T
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	budgetBlown := false

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					return
				}
				m().workersActive.Inc()
				err := fn(ctx, j.item)
				m().workersActive.Dec()
				if err != nil {
					m().itemErrors.Inc()
					mu.Lock()
					errs = append(errs, &ItemError{Index: j.index, Err: err})
					over := policy.ContinueOnError && policy.ErrorBudget > 0 && len(errs) > policy.ErrorBudget
					if over && !budgetBlown {
						budgetBlown = true
						errs = append(errs, ErrBudgetExhausted)
					}
					mu.Unlock()
					if !policy.ContinueOnError || over {
						cancel()
						return
					}
					continue
				}
				m().itemsDone.Inc()
			}
		}()
	}

feed:
	for i, item := range items {
		select {
		case jobs <- job{index: i, item: item}:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}

// Checkpoint is an append-only set of completed item ids persisted to
// disk, one id per line. Reopening a checkpoint resumes the crawl.
type Checkpoint struct {
	mu   sync.Mutex
	done map[string]bool
	f    vfs.File
	w    *bufio.Writer
	sync bool
}

// checkpointConfig collects OpenCheckpoint options; the fs must be
// known before the file is opened, so options apply to this rather
// than to the Checkpoint itself.
type checkpointConfig struct {
	sync bool
	fs   vfs.FS
}

// CheckpointOption tunes OpenCheckpoint.
type CheckpointOption func(*checkpointConfig)

// WithSync makes every Mark fsync the checkpoint file, so a completed id
// survives power loss — not just process death — at the cost of one disk
// sync per item. Opt-in: crawls that can afford to re-crawl a tail of
// addresses keep the cheap default.
func WithSync() CheckpointOption {
	return func(c *checkpointConfig) { c.sync = true }
}

// WithFS opens and writes the checkpoint through fsys (default
// vfs.OS), so chaos tests can inject disk faults into Mark's
// durability path.
func WithFS(fsys vfs.FS) CheckpointOption {
	return func(c *checkpointConfig) { c.fs = fsys }
}

// OpenCheckpoint loads (or creates) the checkpoint at path.
func OpenCheckpoint(path string, opts ...CheckpointOption) (*Checkpoint, error) {
	var cfg checkpointConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	f, err := vfs.OrOS(cfg.fs).OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("crawler: open checkpoint: %w", err)
	}
	cp := &Checkpoint{done: make(map[string]bool), f: f, sync: cfg.sync}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			cp.done[line] = true
		}
	}
	if err := sc.Err(); err != nil {
		_ = f.Close() // the read error is the failure being reported
		return nil, fmt.Errorf("crawler: read checkpoint: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		_ = f.Close() // the seek error is the failure being reported
		return nil, fmt.Errorf("crawler: seek checkpoint: %w", err)
	}
	cp.w = bufio.NewWriter(f)
	return cp, nil
}

// Done reports whether id was already processed.
func (c *Checkpoint) Done(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done[id]
}

// Count returns the number of completed ids.
func (c *Checkpoint) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Mark records id as processed and flushes it to disk.
func (c *Checkpoint) Mark(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done[id] {
		return nil
	}
	c.done[id] = true
	if _, err := c.w.WriteString(id + "\n"); err != nil {
		return fmt.Errorf("crawler: write checkpoint: %w", err)
	}
	m().checkpointMarks.Inc()
	if err := c.w.Flush(); err != nil {
		return err
	}
	if c.sync {
		if err := c.f.Sync(); err != nil {
			return fmt.Errorf("crawler: sync checkpoint: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the underlying file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Flush(); err != nil {
		_ = c.f.Close() // the flush error is the failure being reported
		return err
	}
	return c.f.Close()
}
