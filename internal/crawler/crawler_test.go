package crawler

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsBurstThenBlocks(t *testing.T) {
	now := time.Unix(0, 0)
	var slept []time.Duration
	l := NewLimiter(10, 3)
	l.now = func() time.Time { return now }
	l.last = now // re-anchor: the constructor sampled the real clock
	l.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		now = now.Add(d)
		return nil
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 0 {
		t.Fatalf("burst waits slept: %v", slept)
	}
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if len(slept) == 0 {
		t.Fatal("fourth wait did not sleep")
	}
	// At 10 rps the wait for one token is ~100ms.
	if slept[0] < 90*time.Millisecond || slept[0] > 110*time.Millisecond {
		t.Errorf("slept %v, want ~100ms", slept[0])
	}
}

func TestLimiterHonorsContext(t *testing.T) {
	l := NewLimiter(0.001, 1)
	ctx := context.Background()
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := l.Wait(cctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}

func TestRetrySucceedsAfterTransientErrors(t *testing.T) {
	cfg := DefaultRetry()
	cfg.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	calls := 0
	err := Retry(context.Background(), cfg, func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	cfg := DefaultRetry()
	cfg.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	calls := 0
	sentinel := errors.New("nope")
	err := Retry(context.Background(), cfg, func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Errorf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, sentinel) || !errors.Is(err, ErrPermanent) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryRespectsRetryIf(t *testing.T) {
	cfg := DefaultRetry()
	cfg.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	cfg.RetryIf = func(err error) bool { return false }
	calls := 0
	Retry(context.Background(), cfg, func(context.Context) error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Errorf("RetryIf=false retried %d times", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	cfg := RetryConfig{Attempts: 4, BaseDelay: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	calls := 0
	err := Retry(context.Background(), cfg, func(context.Context) error { calls++; return errors.New("always") })
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
	if err == nil {
		t.Error("exhausted retry returned nil")
	}
}

func TestRetryBackoffDoublesWithCap(t *testing.T) {
	var delays []time.Duration
	cfg := RetryConfig{Attempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error { delays = append(delays, d); return nil }}
	Retry(context.Background(), cfg, func(context.Context) error { return errors.New("x") })
	want := []time.Duration{100, 200, 400, 400, 400}
	for i, w := range want {
		if delays[i] != w*time.Millisecond {
			t.Errorf("delay %d = %v, want %vms", i, delays[i], w)
		}
	}
}

func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, DefaultRetry(), func(context.Context) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestForEachProcessesAll(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	var sum atomic.Int64
	err := ForEach(context.Background(), 8, items, func(ctx context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 500*499/2 {
		t.Errorf("sum = %d", got)
	}
}

func TestForEachStopsOnError(t *testing.T) {
	items := make([]int, 10000)
	for i := range items {
		items[i] = i
	}
	boom := errors.New("boom")
	var processed atomic.Int64
	err := ForEach(context.Background(), 4, items, func(ctx context.Context, i int) error {
		n := processed.Add(1)
		if n == 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if processed.Load() > 9000 {
		t.Errorf("error did not stop the pool early (processed %d)", processed.Load())
	}
}

func TestForEachConcurrencyBounded(t *testing.T) {
	var cur, peak atomic.Int64
	var mu sync.Mutex
	items := make([]int, 200)
	err := ForEach(context.Background(), 5, items, func(ctx context.Context, _ int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 5 {
		t.Errorf("peak concurrency %d > 5", p)
	}
}

func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.txt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "b"} {
		if err := cp.Mark(id); err != nil {
			t.Fatal(err)
		}
	}
	if cp.Count() != 3 {
		t.Errorf("count = %d, want 3", cp.Count())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if !cp2.Done("a") || !cp2.Done("c") || cp2.Done("z") {
		t.Error("resume lost state")
	}
	if err := cp2.Mark("d"); err != nil {
		t.Fatal(err)
	}
	if cp2.Count() != 4 {
		t.Errorf("count after resume = %d", cp2.Count())
	}
}

func TestCheckpointConcurrentMarks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.txt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				cp.Mark(fmt.Sprintf("id-%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	if cp.Count() != 800 {
		t.Errorf("count = %d, want 800", cp.Count())
	}
	cp.Close()
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Count() != 800 {
		t.Errorf("reloaded count = %d, want 800", cp2.Count())
	}
}
