package crawler

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet bundles the crawler's instrumentation handles, resolved
// once per registry so the hot paths stay allocation-free.
type metricSet struct {
	retryAttempts   *obs.Counter
	retryExhausted  *obs.Counter
	ratelimitWait   *obs.Histogram
	workersActive   *obs.Gauge
	itemsDone       *obs.Counter
	itemErrors      *obs.Counter
	checkpointMarks *obs.Counter
	breakerState    *obs.GaugeVec
	breakerOpens    *obs.CounterVec
	breakerRejects  *obs.CounterVec
	adaptiveRate    *obs.GaugeVec
	adaptiveWorkers *obs.GaugeVec
	adaptiveSheds   *obs.CounterVec

	retryBudgetTokens *obs.GaugeVec
	retryBudgetSpent  *obs.CounterVec
	retryBudgetDenied *obs.CounterVec
	hedgesIssued      *obs.CounterVec
	hedgeWins         *obs.CounterVec
}

var metrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the crawler's instrumentation at reg (nil resets
// to obs.Default). Tests hand in a private registry to assert on
// recorded values without cross-talk.
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	// Wait times span sub-millisecond token grants to minute-long
	// stalls behind a saturated API key.
	waitBuckets := []float64{.001, .005, .01, .05, .1, .5, 1, 5, 15, 60}
	metrics.Store(&metricSet{
		retryAttempts: reg.Counter("crawler_retry_attempts_total",
			"Function attempts executed inside Retry, including first tries."),
		retryExhausted: reg.Counter("crawler_retry_exhausted_total",
			"Retry calls that gave up after exhausting their attempts."),
		ratelimitWait: reg.Histogram("crawler_ratelimit_wait_seconds",
			"Time spent blocked in Limiter.Wait for a token.", waitBuckets),
		workersActive: reg.Gauge("crawler_foreach_workers_active",
			"ForEach workers currently running a callback."),
		itemsDone: reg.Counter("crawler_foreach_items_total",
			"Items successfully processed by ForEach."),
		itemErrors: reg.Counter("crawler_foreach_item_errors_total",
			"Items whose ForEach callback returned an error."),
		checkpointMarks: reg.Counter("crawler_checkpoint_marks_total",
			"New ids marked complete in checkpoints."),
		breakerState: reg.GaugeVec("crawler_breaker_state",
			"Circuit breaker position per source (0 closed, 1 half-open, 2 open).", "source"),
		breakerOpens: reg.CounterVec("crawler_breaker_opens_total",
			"Times each source's circuit breaker tripped open.", "source"),
		breakerRejects: reg.CounterVec("crawler_breaker_rejections_total",
			"Requests rejected while each source's circuit was open.", "source"),
		adaptiveRate: reg.GaugeVec("crawler_adaptive_rate",
			"Current AIMD target request rate per source, in requests/second.", "source"),
		adaptiveWorkers: reg.GaugeVec("crawler_adaptive_workers",
			"Current AIMD in-flight request cap per source.", "source"),
		adaptiveSheds: reg.CounterVec("crawler_adaptive_sheds_total",
			"Server shed signals (429/503 + Retry-After) absorbed per source.", "source"),
		retryBudgetTokens: reg.GaugeVec("crawler_retry_budget_tokens",
			"Retry-budget tokens currently available per source.", "source"),
		retryBudgetSpent: reg.CounterVec("crawler_retry_budget_spent_total",
			"Retries and hedges funded by the retry budget per source.", "source"),
		retryBudgetDenied: reg.CounterVec("crawler_retry_budget_denied_total",
			"Retries suppressed by a dry retry budget per source.", "source"),
		hedgesIssued: reg.CounterVec("crawler_hedges_issued_total",
			"Speculative duplicate requests issued per source.", "source"),
		hedgeWins: reg.CounterVec("crawler_hedge_wins_total",
			"Hedged requests whose duplicate answered first per source.", "source"),
	})
}

func m() *metricSet { return metrics.Load() }
