package crawler

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ensdropcatch/internal/obs"
)

// withTestMetrics points the package metrics at a private registry for
// the duration of the test and returns it.
func withTestMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	InitMetrics(reg)
	t.Cleanup(func() { InitMetrics(nil) })
	return reg
}

func TestLimiterWaitRecordsActualElapsed(t *testing.T) {
	reg := withTestMetrics(t)
	hist := reg.Histogram("crawler_ratelimit_wait_seconds", "", []float64{.001, .005, .01, .05, .1, .5, 1, 5, 15, 60})

	now := time.Unix(0, 0)
	l := NewLimiter(1, 1) // 1 rps: a drained bucket waits ~1s
	l.now = func() time.Time { return now }
	l.last = now
	// The sleep is interrupted by "cancellation" after only 10ms of the
	// requested full delay has elapsed.
	l.sleep = func(ctx context.Context, d time.Duration) error {
		now = now.Add(10 * time.Millisecond)
		return context.Canceled
	}
	if err := l.Wait(context.Background()); err != nil { // burst token, no sleep
		t.Fatal(err)
	}
	if err := l.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// The pre-fix code recorded the full computed delay (~1s); the
	// histogram must hold only the actually elapsed 10ms.
	if sum := hist.Sum(); sum > 0.05 {
		t.Errorf("recorded wait %.3fs, want ~0.01s (cancelled sleep overstated)", sum)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"2", 2 * time.Second, true},
		{"0.25", 250 * time.Millisecond, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, true}, // long past: retry immediately
		{"999999999", 0, false},                    // nonsense horizon
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestParseRetryAfterAtHTTPDate(t *testing.T) {
	// RFC 9110 permits both delta-seconds and HTTP-date forms; dates are
	// resolved relative to the supplied clock so tests stay deterministic.
	now := time.Date(2015, 10, 21, 7, 28, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"imf-fixdate future", "Wed, 21 Oct 2015 07:28:30 GMT", 30 * time.Second, true},
		{"imf-fixdate now", "Wed, 21 Oct 2015 07:28:00 GMT", 0, true},
		{"imf-fixdate past", "Wed, 21 Oct 2015 07:00:00 GMT", 0, true},
		{"rfc850 future", "Wednesday, 21-Oct-15 07:29:00 GMT", time.Minute, true},
		{"asctime future", "Wed Oct 21 07:28:10 2015", 10 * time.Second, true},
		{"far future clamped", "Sat, 24 Oct 2015 07:28:00 GMT", maxRetryAfter, true},
		{"delta seconds still work", "90", 90 * time.Second, true},
		{"garbage", "soonish", 0, false},
		{"date without zone", "2015-10-21 07:28:30", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseRetryAfterAt(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("%s: ParseRetryAfterAt(%q) = (%v, %v), want (%v, %v)", c.name, c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestLimiterSetRate(t *testing.T) {
	withTestMetrics(t)
	now := time.Unix(0, 0)
	l := NewLimiter(1, 4)
	l.now = func() time.Time { return now }
	l.last = now
	l.tokens = 0

	// Two seconds at 1 rps accrue 2 tokens; SetRate must bank them at
	// the old rate before switching, not retroactively reprice them.
	now = now.Add(2 * time.Second)
	l.SetRate(10)
	if got := l.Rate(); got != 10 {
		t.Fatalf("Rate() = %v after SetRate(10)", got)
	}
	l.mu.Lock()
	banked := l.tokens
	l.mu.Unlock()
	if banked != 2 {
		t.Fatalf("tokens = %v after 2s at 1rps, want 2 (accrual repriced?)", banked)
	}
	// From here accrual runs at the new rate: 0.1s buys another token.
	now = now.Add(100 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := l.Wait(context.Background()); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	// Non-positive rates are ignored rather than dividing by zero later.
	l.SetRate(0)
	l.SetRate(-3)
	if got := l.Rate(); got != 10 {
		t.Fatalf("Rate() = %v after invalid SetRate calls, want 10", got)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	cfg := RetryConfig{
		Attempts:  3,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  10 * time.Second,
		Sleep:     func(ctx context.Context, d time.Duration) error { delays = append(delays, d); return nil },
	}
	calls := 0
	err := Retry(context.Background(), cfg, func(context.Context) error {
		calls++
		if calls < 3 {
			return RetryAfter(errors.New("429"), 1234*time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range delays {
		if d != 1234*time.Millisecond {
			t.Errorf("delay %d = %v, want 1234ms (hint ignored)", i, d)
		}
	}
}

func TestRetryCapsRetryAfterHintAtMaxDelay(t *testing.T) {
	var delays []time.Duration
	cfg := RetryConfig{
		Attempts:  2,
		BaseDelay: time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
		Sleep:     func(ctx context.Context, d time.Duration) error { delays = append(delays, d); return nil },
	}
	calls := 0
	Retry(context.Background(), cfg, func(context.Context) error {
		calls++
		if calls == 1 {
			return RetryAfter(errors.New("429"), time.Hour)
		}
		return nil
	})
	if len(delays) != 1 || delays[0] != 50*time.Millisecond {
		t.Errorf("delays = %v, want [50ms]", delays)
	}
}

func TestForEachPolicyContinueCollectsAllErrors(t *testing.T) {
	withTestMetrics(t)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	var processed sync.Map
	err := ForEachPolicy(context.Background(), 4, items, FailurePolicy{ContinueOnError: true},
		func(ctx context.Context, i int) error {
			processed.Store(i, true)
			if i%10 == 0 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
	if err == nil {
		t.Fatal("want joined errors")
	}
	var itemErrs int
	for _, e := range err.(interface{ Unwrap() []error }).Unwrap() {
		var ie *ItemError
		if !errors.As(e, &ie) {
			t.Errorf("error %v is not an *ItemError", e)
			continue
		}
		if ie.Index%10 != 0 {
			t.Errorf("unexpected failing index %d", ie.Index)
		}
		itemErrs++
	}
	if itemErrs != 10 {
		t.Errorf("collected %d item errors, want 10", itemErrs)
	}
	// Every item ran despite the failures.
	for _, i := range items {
		if _, ok := processed.Load(i); !ok {
			t.Errorf("item %d never processed", i)
		}
	}
}

func TestForEachPolicyErrorBudgetAborts(t *testing.T) {
	withTestMetrics(t)
	items := make([]int, 10000)
	for i := range items {
		items[i] = i
	}
	boom := errors.New("boom")
	err := ForEachPolicy(context.Background(), 4, items, FailurePolicy{ContinueOnError: true, ErrorBudget: 5},
		func(ctx context.Context, i int) error { return boom })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted joined in", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("item errors missing from %v", err)
	}
	joined := err.(interface{ Unwrap() []error }).Unwrap()
	// Budget 5 aborts on the 6th failure; concurrency can add at most
	// workers-1 stragglers before the cancel lands.
	if len(joined) > 5+4+1 {
		t.Errorf("%d errors collected, budget did not abort early", len(joined))
	}
}

func TestForEachPolicyZeroValueFailsFast(t *testing.T) {
	withTestMetrics(t)
	items := make([]int, 10000)
	boom := errors.New("boom")
	var calls sync.Map
	n := 0
	err := ForEachPolicy(context.Background(), 4, items, FailurePolicy{},
		func(ctx context.Context, i int) error {
			calls.Store(i, true)
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	calls.Range(func(_, _ any) bool { n++; return true })
	if n > 1000 {
		t.Errorf("fail-fast processed %d items", n)
	}
}

func TestCheckpointWithSyncPersists(t *testing.T) {
	withTestMetrics(t)
	path := filepath.Join(t.TempDir(), "cp.sync")
	cp, err := OpenCheckpoint(path, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := cp.Mark(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if !cp2.Done("a") || !cp2.Done("b") || cp2.Count() != 2 {
		t.Errorf("synced checkpoint lost state: count=%d", cp2.Count())
	}
}

// TestForEachConcurrentCheckpointMark drives ForEach workers into a
// shared checkpoint, the exact shape of the resumable crawl's hot path;
// run under -race it guards the Mark/Done locking.
func TestForEachConcurrentCheckpointMark(t *testing.T) {
	withTestMetrics(t)
	path := filepath.Join(t.TempDir(), "cp.race")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	err = ForEach(context.Background(), 8, items, func(ctx context.Context, i int) error {
		id := fmt.Sprintf("id-%d", i)
		if cp.Done(id) {
			return fmt.Errorf("id %s done before mark", id)
		}
		if err := cp.Mark(id); err != nil {
			return err
		}
		cp.Count()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Count() != len(items) {
		t.Errorf("reloaded %d marks, want %d", cp2.Count(), len(items))
	}
}
