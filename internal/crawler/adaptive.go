package crawler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ensdropcatch/internal/trace"
)

// AdaptiveConfig tunes an Adaptive controller. Zero values pick
// defaults suited to crawling one rate-limited API.
type AdaptiveConfig struct {
	// Source names the controller in metrics (crawler_adaptive_*{source}).
	Source string
	// InitialRate is the starting pace in requests/second; <= 0 uses 5.
	InitialRate float64
	// MinRate floors multiplicative decrease; <= 0 uses 0.5.
	MinRate float64
	// MaxRate caps additive increase; <= 0 uses 20× InitialRate.
	MaxRate float64
	// Increase is the additive rate step per clean response; <= 0 uses 0.2.
	Increase float64
	// Decrease is the multiplicative rate factor on a shed signal,
	// in (0, 1); out of range uses 0.5.
	Decrease float64
	// MinWorkers floors the concurrency cap; <= 0 uses 1.
	MinWorkers int
	// MaxWorkers caps the concurrency ramp; <= 0 uses 8.
	MaxWorkers int
	// RampSuccesses is how many consecutive clean responses buy one more
	// worker slot; <= 0 uses 16.
	RampSuccesses int
	// LatencyTarget suppresses the additive increase for responses
	// slower than it (latency is an early congestion signal); 0 disables
	// the check.
	LatencyTarget time.Duration
	// Now is the injectable clock for tests; nil uses time.Now.
	Now func() time.Time
	// Sleep is indirected for tests; nil uses a context-aware sleep.
	Sleep func(context.Context, time.Duration) error
}

// Adaptive is an AIMD (additive-increase / multiplicative-decrease)
// controller that tunes a crawl's request rate and effective concurrency
// from server feedback: explicit shed signals (429/503 carrying
// Retry-After, surfaced as *RetryAfterError by the clients) halve the
// rate and the in-flight cap and pause until the server's hint expires,
// while clean responses claw both back — additively for rate, and one
// worker slot per RampSuccesses-long clean streak. Latency above
// LatencyTarget withholds the increase, reacting to congestion before
// the server has to shed.
//
// It composes with, not replaces, the PR 2 machinery: the Breaker still
// fail-fasts outages (breaker rejections are local and feed nothing
// back), Retry still performs per-request backoff; Adaptive shifts the
// steady-state operating point so those mechanisms fire rarely.
//
// Use Wait for pacing, Acquire/Release to bound in-flight requests
// under the dynamic worker cap, and Observe to feed outcomes back.
// Safe for concurrent use.
type Adaptive struct {
	cfg AdaptiveConfig
	lim *Limiter

	sheds     atomic.Uint64
	successes atomic.Uint64

	mu         sync.Mutex
	rate       float64       // guarded by mu
	workers    int           // guarded by mu
	inflight   int           // guarded by mu
	streak     int           // guarded by mu
	pauseUntil time.Time     // guarded by mu
	wake       chan struct{} // closed and replaced on release / worker ramp; guarded by mu
}

// NewAdaptive returns a controller for cfg.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	if cfg.Source == "" {
		cfg.Source = "default"
	}
	if cfg.InitialRate <= 0 {
		cfg.InitialRate = 5
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = 0.5
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = 20 * cfg.InitialRate
	}
	if cfg.Increase <= 0 {
		cfg.Increase = 0.2
	}
	if cfg.Decrease <= 0 || cfg.Decrease >= 1 {
		cfg.Decrease = 0.5
	}
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	if cfg.MaxWorkers < cfg.MinWorkers {
		cfg.MaxWorkers = 8
		if cfg.MaxWorkers < cfg.MinWorkers {
			cfg.MaxWorkers = cfg.MinWorkers
		}
	}
	if cfg.RampSuccesses <= 0 {
		cfg.RampSuccesses = 16
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = defaultSleep
	}
	if cfg.InitialRate < cfg.MinRate {
		cfg.InitialRate = cfg.MinRate
	}
	if cfg.InitialRate > cfg.MaxRate {
		cfg.InitialRate = cfg.MaxRate
	}
	a := &Adaptive{
		cfg:     cfg,
		lim:     NewLimiter(cfg.InitialRate, 1),
		rate:    cfg.InitialRate,
		workers: cfg.MaxWorkers,
		wake:    make(chan struct{}),
	}
	a.publishLocked()
	return a
}

// publishLocked mirrors the controller state into gauges; callers hold
// a.mu (or own the sole reference during construction).
func (a *Adaptive) publishLocked() {
	m().adaptiveRate.With(a.cfg.Source).Set(a.rate)
	m().adaptiveWorkers.With(a.cfg.Source).Set(float64(a.workers))
}

// Rate returns the current target pace in requests/second.
func (a *Adaptive) Rate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rate
}

// Workers returns the current in-flight request cap.
func (a *Adaptive) Workers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.workers
}

// Sheds returns how many shed signals (429/503 + Retry-After) the
// controller has absorbed.
func (a *Adaptive) Sheds() uint64 { return a.sheds.Load() }

// Successes returns how many clean responses the controller has seen.
func (a *Adaptive) Successes() uint64 { return a.successes.Load() }

// Wait paces one request: it first sits out any server-directed pause
// (Retry-After from the last shed), then waits for a rate token.
func (a *Adaptive) Wait(ctx context.Context) error {
	for {
		a.mu.Lock()
		pause := a.pauseUntil
		a.mu.Unlock()
		now := a.cfg.Now()
		if !pause.After(now) {
			break
		}
		// A server-directed pause is the AIMD controller acting on a
		// shed; name it in the trace so a slow span is attributable.
		if sp := trace.FromContext(ctx); sp != nil {
			sp.Event("adaptive.pause",
				trace.A("source", a.cfg.Source),
				trace.A("duration", pause.Sub(now).String()))
		}
		if err := a.cfg.Sleep(ctx, pause.Sub(now)); err != nil {
			return err
		}
	}
	return a.lim.Wait(ctx)
}

// Acquire blocks until an in-flight slot is free under the current
// worker cap or the context is cancelled. Pair with Release.
func (a *Adaptive) Acquire(ctx context.Context) error {
	for {
		a.mu.Lock()
		if a.inflight < a.workers {
			a.inflight++
			a.mu.Unlock()
			return nil
		}
		wake := a.wake
		a.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		}
	}
}

// Release frees an in-flight slot claimed by Acquire.
func (a *Adaptive) Release() {
	a.mu.Lock()
	a.inflight--
	a.wakeLocked()
	a.mu.Unlock()
}

func (a *Adaptive) wakeLocked() {
	close(a.wake)
	a.wake = make(chan struct{})
}

// Observe feeds one request outcome back. Clean responses increase the
// rate (unless slower than LatencyTarget) and ramp workers on a streak;
// shed signals — *RetryAfterError from a real server answer, not a
// local breaker rejection — multiplicatively decrease both and honor
// the server's pause hint. Context cancellations and other transport
// errors are neutral: they say nothing about server headroom, and the
// Breaker owns outage handling.
func (a *Adaptive) Observe(err error, latency time.Duration) {
	switch {
	case err == nil:
		a.onSuccess(latency)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
	case errors.Is(err, ErrBreakerOpen):
	default:
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			a.onShed(ra.After)
		}
	}
}

func (a *Adaptive) onSuccess(latency time.Duration) {
	a.successes.Add(1)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.LatencyTarget > 0 && latency > a.cfg.LatencyTarget {
		// Served, but slowly: hold the line rather than push harder.
		a.streak = 0
		return
	}
	a.rate += a.cfg.Increase
	if a.rate > a.cfg.MaxRate {
		a.rate = a.cfg.MaxRate
	}
	a.lim.SetRate(a.rate)
	a.streak++
	if a.streak >= a.cfg.RampSuccesses && a.workers < a.cfg.MaxWorkers {
		a.workers++
		a.streak = 0
		a.wakeLocked()
	}
	a.publishLocked()
}

func (a *Adaptive) onShed(after time.Duration) {
	a.sheds.Add(1)
	m().adaptiveSheds.With(a.cfg.Source).Inc()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rate *= a.cfg.Decrease
	if a.rate < a.cfg.MinRate {
		a.rate = a.cfg.MinRate
	}
	a.lim.SetRate(a.rate)
	if w := a.workers / 2; w >= a.cfg.MinWorkers {
		a.workers = w
	} else {
		a.workers = a.cfg.MinWorkers
	}
	a.streak = 0
	if after > 0 {
		until := a.cfg.Now().Add(after)
		if until.After(a.pauseUntil) {
			a.pauseUntil = until
		}
	}
	a.publishLocked()
}
