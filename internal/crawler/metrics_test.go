package crawler

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ensdropcatch/internal/obs"
)

// withTestRegistry points the package metrics at a private registry for
// the duration of a test.
func withTestRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	InitMetrics(reg)
	t.Cleanup(func() { InitMetrics(nil) })
	return reg
}

func TestRetryRecordsAttemptsAndExhaustion(t *testing.T) {
	reg := withTestRegistry(t)
	cfg := RetryConfig{Attempts: 3, BaseDelay: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	if err := Retry(context.Background(), cfg, func(context.Context) error { return errors.New("x") }); err == nil {
		t.Fatal("want error")
	}
	if got := reg.Counter("crawler_retry_attempts_total", "").Value(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := reg.Counter("crawler_retry_exhausted_total", "").Value(); got != 1 {
		t.Errorf("exhausted = %d, want 1", got)
	}
}

func TestLimiterRecordsWaitTime(t *testing.T) {
	reg := withTestRegistry(t)
	now := time.Unix(0, 0)
	l := NewLimiter(10, 1)
	l.now = func() time.Time { return now }
	l.last = now
	l.sleep = func(ctx context.Context, d time.Duration) error { now = now.Add(d); return nil }
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	h := reg.Histogram("crawler_ratelimit_wait_seconds", "", nil)
	if got := h.Count(); got != 3 {
		t.Errorf("wait observations = %d, want 3", got)
	}
	// First token is free; the next two wait ~100ms each at 10 rps.
	if got := h.Sum(); got < 0.15 || got > 0.25 {
		t.Errorf("total waited = %vs, want ~0.2s", got)
	}
}

func TestForEachRecordsItemsAndErrors(t *testing.T) {
	reg := withTestRegistry(t)
	items := []int{1, 2, 3, 4, 5}
	err := ForEach(context.Background(), 1, items, func(ctx context.Context, i int) error {
		if i == 4 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := reg.Counter("crawler_foreach_items_total", "").Value(); got != 3 {
		t.Errorf("items done = %d, want 3", got)
	}
	if got := reg.Counter("crawler_foreach_item_errors_total", "").Value(); got != 1 {
		t.Errorf("item errors = %d, want 1", got)
	}
	if got := reg.Gauge("crawler_foreach_workers_active", "").Value(); got != 0 {
		t.Errorf("workers active after run = %v, want 0", got)
	}
}

func TestCheckpointRecordsMarks(t *testing.T) {
	reg := withTestRegistry(t)
	cp, err := OpenCheckpoint(filepath.Join(t.TempDir(), "cp"))
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	for _, id := range []string{"a", "b", "a"} {
		if err := cp.Mark(id); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate marks are not new completions.
	if got := reg.Counter("crawler_checkpoint_marks_total", "").Value(); got != 2 {
		t.Errorf("marks = %d, want 2", got)
	}
}

func TestRetrySharedRandConcurrent(t *testing.T) {
	// The nil-Rand path draws jitter from a shared seeded source; this
	// must be safe under concurrent retries (run with -race).
	cfg := DefaultRetry()
	cfg.Attempts = 4
	cfg.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Retry(context.Background(), cfg, func(context.Context) error { return errors.New("always") })
		}()
	}
	wg.Wait()
}

func TestJitterFactorRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if f := jitterFactor(nil, 0.2); f < 0.8 || f > 1.2 {
			t.Fatalf("jitter factor %v outside [0.8, 1.2]", f)
		}
	}
}
