package crawler

import (
	"errors"
	"fmt"
	"sync"
)

// ErrRetryBudgetExhausted marks a retry that was suppressed because the
// source's retry budget ran dry. It is permanent by construction —
// Retry fails fast instead of sleeping and trying again — because the
// budget exists precisely to stop retry storms from amplifying an
// outage.
var ErrRetryBudgetExhausted = errors.New("crawler: retry budget exhausted")

// RetryBudget bounds retry amplification per source. It is a token
// bucket refilled as a fraction of successful first attempts: every
// success deposits Ratio tokens, every retry withdraws one. During
// normal operation the bucket stays near its cap and retries flow
// freely; during an outage successes stop, the bucket drains, and
// further retries fail fast — the whole fleet's upstream request volume
// stays within (1 + Ratio) of the offered load instead of multiplying
// by the per-call attempt count.
//
// The zero value is unusable; use NewRetryBudget. Safe for concurrent
// use. The budget composes with the other control layers rather than
// replacing them: the breaker fail-fasts a *known-down* source, AIMD
// paces a *congested* one, and the budget caps the retry *multiplier*
// regardless of why attempts fail (see DESIGN.md).
type RetryBudget struct {
	source string
	ratio  float64
	cap    float64

	mu     sync.Mutex
	tokens float64
}

// NewRetryBudget returns a budget for the named source. ratio is the
// fraction of successes earned back as retry tokens (<= 0 uses 0.1,
// i.e. 10% retry amplification); burst is the bucket cap (<= 0 uses
// 10). The bucket starts full so cold starts and short blips retry
// normally.
func NewRetryBudget(source string, ratio, burst float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	b := &RetryBudget{source: source, ratio: ratio, cap: burst, tokens: burst}
	m().retryBudgetTokens.With(source).Set(burst)
	return b
}

// Source returns the name the budget was created with.
func (b *RetryBudget) Source() string { return b.source }

// Deposit credits one successful first attempt: the budget earns ratio
// tokens, up to the cap.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	t := b.tokens
	b.mu.Unlock()
	m().retryBudgetTokens.With(b.source).Set(t)
}

// Withdraw takes one token for a retry (or a hedge). It reports false —
// without sleeping or blocking — when the budget is dry.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	t := b.tokens
	b.mu.Unlock()
	m().retryBudgetTokens.With(b.source).Set(t)
	if ok {
		m().retryBudgetSpent.With(b.source).Inc()
	} else {
		m().retryBudgetDenied.With(b.source).Inc()
	}
	return ok
}

// Low reports whether the budget cannot currently fund a speculative
// request. Hedging uses this as its gate: hedges are a luxury, spent
// only when the budget could also absorb real retries.
func (b *RetryBudget) Low() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens < 1
}

// exhausted wraps err for the fail-fast path.
func (b *RetryBudget) exhausted(err error) error {
	return fmt.Errorf("%w: %s: %w", ErrRetryBudgetExhausted, b.source, err)
}
