package crawler

import (
	"context"
	"math"
	"sync"
	"time"

	"ensdropcatch/internal/trace"
)

// Hedger issues a duplicate request for an idempotent read whose first
// attempt has been in flight longer than the source's tail latency
// estimate, and takes whichever answer lands first. Tail latency is
// tracked as an EWMA of observed durations plus an EWMA of their
// absolute deviation; the hedge fires at mean + TailSigma·deviation, a
// cheap p99 proxy that needs no histogram.
//
// Hedges are speculative load, so they are gated twice: never when the
// source's breaker is not closed (a struggling source must see less
// traffic, not double), and never when the retry budget is low (hedges
// spend from the same token bucket as retries). See DESIGN.md for how
// this composes with the breaker, AIMD, and the retry budget.
type Hedger struct {
	cfg HedgeConfig

	mu   sync.Mutex
	mean float64 // EWMA of success latency, seconds; guarded by mu
	dev  float64 // EWMA of |latency - mean|, seconds; guarded by mu
	obs  int64   // successes observed; guarded by mu
}

// HedgeConfig tunes a Hedger.
type HedgeConfig struct {
	// Source names the upstream for metrics and trace events.
	Source string
	// Breaker, when set, vetoes hedging unless it is closed.
	Breaker *Breaker
	// Budget, when set, funds hedges: each hedge withdraws one token,
	// and a low budget vetoes hedging entirely.
	Budget *RetryBudget
	// TailSigma is the deviation multiplier in the hedge-delay estimate
	// (<= 0 uses 3, roughly p99 for well-behaved latency).
	TailSigma float64
	// MinDelay floors the hedge delay so a cold estimator cannot hedge
	// instantly (<= 0 uses 20ms).
	MinDelay time.Duration
	// MaxDelay caps the hedge delay (<= 0 uses 2s).
	MaxDelay time.Duration
	// Warmup is how many latency observations the estimator needs
	// before hedging activates (<= 0 uses 10).
	Warmup int
	// Alpha is the EWMA smoothing factor in (0, 1] (<= 0 uses 0.2).
	Alpha float64
}

// NewHedger returns a hedger for cfg with an empty latency estimate;
// hedging stays dormant until Warmup observations arrive.
func NewHedger(cfg HedgeConfig) *Hedger {
	if cfg.TailSigma <= 0 {
		cfg.TailSigma = 3
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 20 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 10
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.2
	}
	return &Hedger{cfg: cfg}
}

// Observe feeds one successful request latency into the tail estimate.
// Failures are not observed: fault latencies (timeouts, instant
// refusals) would poison the estimate in both directions.
func (h *Hedger) Observe(d time.Duration) {
	s := d.Seconds()
	h.mu.Lock()
	if h.obs == 0 {
		h.mean = s
	} else {
		h.mean += h.cfg.Alpha * (s - h.mean)
		h.dev += h.cfg.Alpha * (math.Abs(s-h.mean) - h.dev)
	}
	h.obs++
	h.mu.Unlock()
}

// Delay returns the current hedge trigger: the tail latency estimate
// clamped to [MinDelay, MaxDelay].
func (h *Hedger) Delay() time.Duration {
	h.mu.Lock()
	est := h.mean + h.cfg.TailSigma*h.dev
	h.mu.Unlock()
	d := time.Duration(est * float64(time.Second))
	if d < h.cfg.MinDelay {
		d = h.cfg.MinDelay
	}
	if d > h.cfg.MaxDelay {
		d = h.cfg.MaxDelay
	}
	return d
}

// armed reports whether a hedge may be issued right now.
func (h *Hedger) armed() bool {
	h.mu.Lock()
	warm := h.obs >= int64(h.cfg.Warmup)
	h.mu.Unlock()
	if !warm {
		return false
	}
	if h.cfg.Breaker != nil && h.cfg.Breaker.State() != BreakerClosed {
		return false
	}
	if h.cfg.Budget != nil && h.cfg.Budget.Low() {
		return false
	}
	return true
}

// hedgeResult carries one attempt's outcome.
type hedgeResult[T any] struct {
	v      T
	err    error
	t      time.Duration
	hedged bool
}

// Hedge runs fn, duplicating it once if the first call outlives the
// hedger's tail-latency estimate and the gates allow. The first
// successful answer wins and the loser's context is cancelled; if both
// fail, the primary's error is returned. fn MUST be idempotent — it is
// the caller's contract that running it twice is safe.
func Hedge[T any](ctx context.Context, h *Hedger, fn func(context.Context) (T, error)) (T, error) {
	if h == nil {
		return fn(ctx)
	}
	run := func(rctx context.Context, hedged bool, ch chan<- hedgeResult[T]) {
		start := time.Now()
		v, err := fn(rctx)
		ch <- hedgeResult[T]{v: v, err: err, t: time.Since(start), hedged: hedged}
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered for both attempts, so a loser finishing after the win
	// never blocks and its goroutine always exits.
	ch := make(chan hedgeResult[T], 2)
	go run(pctx, false, ch)

	launched := 1
	var firstErr error
	var timer *time.Timer
	var fire <-chan time.Time
	if h.armed() {
		timer = time.NewTimer(h.Delay())
		fire = timer.C
		defer timer.Stop()
	}
	for {
		select {
		case <-fire:
			fire = nil
			// Re-check the gates at fire time: the breaker may have
			// opened or the budget drained while the primary was slow.
			if !h.armed() || (h.cfg.Budget != nil && !h.cfg.Budget.Withdraw()) {
				continue
			}
			m().hedgesIssued.With(h.cfg.Source).Inc()
			if sp := trace.FromContext(ctx); sp != nil {
				sp.Event("hedge.issued", trace.A("source", h.cfg.Source))
			}
			launched++
			go run(pctx, true, ch)
		case r := <-ch:
			launched--
			if r.err == nil {
				cancel() // the loser's work is now pointless
				h.Observe(r.t)
				if r.hedged {
					m().hedgeWins.With(h.cfg.Source).Inc()
					if sp := trace.FromContext(ctx); sp != nil {
						sp.Event("hedge.won", trace.A("source", h.cfg.Source))
					}
				}
				return r.v, nil
			}
			// Prefer the primary's error; a hedge's cancellation noise
			// must never mask it.
			if !r.hedged || firstErr == nil {
				firstErr = r.err
			}
			if launched == 0 {
				var zero T
				return zero, firstErr
			}
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}
