package crawler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits every request.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits one probe request after the cooldown.
	BreakerHalfOpen
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
)

// String renders the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrBreakerOpen is returned by Allow while the circuit is open. It is
// wrapped with a RetryAfter hint for the remaining cooldown, so Retry
// naturally waits out the outage instead of hammering a down source.
var ErrBreakerOpen = errors.New("crawler: circuit breaker open")

// Breaker is a per-source circuit breaker. A run of consecutive
// transport-level failures opens the circuit; after a cooldown one probe
// is admitted (half-open), and its outcome either closes the circuit or
// re-opens it. Context cancellations are neutral (they say nothing about
// source health) and permanent API errors count as successes (the source
// answered decisively). Safe for concurrent use.
type Breaker struct {
	name      string
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState     // guarded by mu
	failures int              // guarded by mu
	openedAt time.Time        // guarded by mu
	probing  bool             // guarded by mu
	now      func() time.Time // injectable clock for tests
}

// NewBreaker returns a closed breaker for the named source that opens
// after threshold consecutive failures (min 1) and cools down for
// cooldown (<= 0 uses 30s) before probing.
func NewBreaker(name string, threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	b := &Breaker{name: name, threshold: threshold, cooldown: cooldown, now: time.Now}
	b.setStateGauge(BreakerClosed)
	return b
}

// Name returns the source name the breaker was created with.
func (b *Breaker) Name() string { return b.name }

// State reports the current state, performing the open -> half-open
// transition if the cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *Breaker) stateLocked() BreakerState {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
		b.setStateGauge(BreakerHalfOpen)
	}
	return b.state
}

// Allow reports whether a request may proceed. While open (or while a
// half-open probe is already in flight) it returns ErrBreakerOpen
// wrapped with a RetryAfter hint for the remaining cooldown.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
		m().breakerRejects.With(b.name).Inc()
		return RetryAfter(fmt.Errorf("%w: %s probing", ErrBreakerOpen, b.name), b.cooldown)
	default: // BreakerOpen
		m().breakerRejects.With(b.name).Inc()
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		return RetryAfter(fmt.Errorf("%w: %s cooling down", ErrBreakerOpen, b.name), remaining)
	}
}

// Record feeds a request outcome back into the breaker.
func (b *Breaker) Record(err error) {
	neutral := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	success := err == nil || errors.Is(err, ErrPermanent)
	b.mu.Lock()
	defer b.mu.Unlock()
	state := b.stateLocked()
	if neutral {
		if state == BreakerHalfOpen {
			b.probing = false // hand the probe slot to the next caller
		}
		return
	}
	if success {
		if state != BreakerClosed {
			b.setStateGauge(BreakerClosed)
		}
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	switch state {
	case BreakerHalfOpen:
		b.openLocked()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openLocked()
		}
	}
}

// openLocked transitions to BreakerOpen; callers hold b.mu.
func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	m().breakerOpens.With(b.name).Inc()
	b.setStateGauge(BreakerOpen)
}

func (b *Breaker) setStateGauge(s BreakerState) {
	m().breakerState.With(b.name).Set(float64(s))
}

// Do runs fn through the breaker: a rejected call fails fast with
// ErrBreakerOpen, otherwise fn's outcome is recorded.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	b.Record(err)
	return err
}
