package crawler

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep makes Retry's backoff instant for tests.
func noSleep(context.Context, time.Duration) error { return nil }

func TestRetryBudgetFailsFastWhenDry(t *testing.T) {
	budget := NewRetryBudget("test", 0.1, 2) // 2 tokens, nothing refilling
	boom := errors.New("upstream down")
	var attempts atomic.Int64
	cfg := RetryConfig{Attempts: 10, BaseDelay: time.Millisecond, Sleep: noSleep, Budget: budget}
	err := Retry(context.Background(), cfg, func(context.Context) error {
		attempts.Add(1)
		return boom
	})
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, must still wrap the underlying failure", err)
	}
	// 1 first attempt + 2 funded retries, then fail fast.
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (first + 2 budgeted retries)", got)
	}
}

func TestRetryBudgetRefilledBySuccesses(t *testing.T) {
	budget := NewRetryBudget("test", 0.5, 1)
	cfg := RetryConfig{Attempts: 3, BaseDelay: time.Millisecond, Sleep: noSleep, Budget: budget}
	ok := func(context.Context) error { return nil }

	// Drain the single starting token.
	fails := 0
	_ = Retry(context.Background(), cfg, func(context.Context) error { fails++; return errors.New("x") })
	if fails != 2 {
		t.Fatalf("drain pass ran %d attempts, want 2", fails)
	}
	if !budget.Low() {
		t.Fatal("budget should be dry after the drain")
	}
	// Two successful first attempts at ratio 0.5 earn one retry back.
	for i := 0; i < 2; i++ {
		if err := Retry(context.Background(), cfg, ok); err != nil {
			t.Fatal(err)
		}
	}
	if budget.Low() {
		t.Fatal("budget should have refilled from successes")
	}
	fails = 0
	_ = Retry(context.Background(), cfg, func(context.Context) error { fails++; return errors.New("x") })
	if fails != 2 {
		t.Fatalf("refilled pass ran %d attempts, want 2 (one funded retry)", fails)
	}
}

// The acceptance property behind the budget: during a total outage, a
// fleet with a budget issues strictly fewer upstream requests than the
// same fleet without one — retry storms must not amplify the load.
func TestRetryBudgetBoundsOutageAmplification(t *testing.T) {
	outageCalls := func(budget *RetryBudget) int64 {
		var upstream atomic.Int64
		cfg := RetryConfig{Attempts: 5, BaseDelay: time.Millisecond, Sleep: noSleep, Budget: budget}
		for i := 0; i < 50; i++ {
			_ = Retry(context.Background(), cfg, func(context.Context) error {
				upstream.Add(1)
				return errors.New("blackout")
			})
		}
		return upstream.Load()
	}
	without := outageCalls(nil)
	with := outageCalls(NewRetryBudget("test", 0.1, 10))
	if with >= without {
		t.Fatalf("budgeted outage issued %d upstream calls, unbudgeted %d — no damping", with, without)
	}
	// Specifically: 50 first attempts + the 10-token burst.
	if with != 60 {
		t.Fatalf("budgeted outage issued %d upstream calls, want 60", with)
	}
	if without != 250 {
		t.Fatalf("unbudgeted outage issued %d upstream calls, want 250", without)
	}
}

// Budget exhaustion is not retried by an outer Retry layer either: the
// error fails the whole call.
func TestRetryBudgetErrorIsNotRetryable(t *testing.T) {
	budget := NewRetryBudget("test", 0.1, 1)
	cfg := RetryConfig{Attempts: 5, BaseDelay: time.Millisecond, Sleep: noSleep, Budget: budget,
		RetryIf: func(err error) bool { return !errors.Is(err, ErrRetryBudgetExhausted) }}
	var attempts int
	err := Retry(context.Background(), cfg, func(context.Context) error { attempts++; return errors.New("x") })
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}
