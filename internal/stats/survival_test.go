package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKaplanMeierNoCensoring(t *testing.T) {
	// Without censoring, KM equals the empirical survival function.
	obs := []Observation{
		{1, true}, {2, true}, {3, true}, {4, true},
	}
	curve := KaplanMeier(obs)
	if len(curve) != 4 {
		t.Fatalf("points = %d", len(curve))
	}
	want := []float64{0.75, 0.5, 0.25, 0}
	for i, p := range curve {
		if math.Abs(p.Survival-want[i]) > 1e-12 {
			t.Errorf("S(%v) = %v, want %v", p.Time, p.Survival, want[i])
		}
	}
}

func TestKaplanMeierCensoringRaisesSurvival(t *testing.T) {
	events := []Observation{{1, true}, {2, true}, {3, true}, {4, true}}
	censored := []Observation{{1, true}, {2, true}, {3, false}, {4, false}}
	se := KaplanMeier(events)
	sc := KaplanMeier(censored)
	// With the last two subjects censored instead of dying, survival
	// beyond their times stays higher than in the all-event case.
	if SurvivalAt(sc, 4.5) <= SurvivalAt(se, 4.5) {
		t.Errorf("censoring did not raise survival: %v vs %v",
			SurvivalAt(sc, 4.5), SurvivalAt(se, 4.5))
	}
}

func TestKaplanMeierTiesAndSteps(t *testing.T) {
	obs := []Observation{
		{5, true}, {5, true}, {5, false}, {8, true},
	}
	curve := KaplanMeier(obs)
	if len(curve) != 2 {
		t.Fatalf("points = %d", len(curve))
	}
	// At t=5: 4 at risk, 2 events -> S = 0.5.
	if curve[0].AtRisk != 4 || curve[0].Events != 2 || math.Abs(curve[0].Survival-0.5) > 1e-12 {
		t.Errorf("first step = %+v", curve[0])
	}
	// At t=8: 1 at risk, 1 event -> S = 0.
	if curve[1].AtRisk != 1 || curve[1].Survival != 0 {
		t.Errorf("second step = %+v", curve[1])
	}
}

func TestSurvivalAtAndMedian(t *testing.T) {
	curve := KaplanMeier([]Observation{{10, true}, {20, true}, {30, true}, {40, true}})
	if SurvivalAt(curve, 5) != 1 {
		t.Error("S before first event != 1")
	}
	if got := SurvivalAt(curve, 25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("S(25) = %v", got)
	}
	med, ok := MedianSurvival(curve)
	if !ok || med != 20 {
		t.Errorf("median = %v, %v", med, ok)
	}
	// All censored: median never reached.
	flat := KaplanMeier([]Observation{{1, false}, {2, false}})
	if _, ok := MedianSurvival(flat); ok {
		t.Error("median reached with no events")
	}
	if flat != nil {
		t.Errorf("all-censored curve should have no points, got %v", flat)
	}
}

func TestKaplanMeierEmpty(t *testing.T) {
	if KaplanMeier(nil) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestQuickKaplanMeierMonotoneIn01(t *testing.T) {
	f := func(raw []bool, times []uint16) bool {
		n := len(raw)
		if len(times) < n {
			n = len(times)
		}
		obs := make([]Observation, 0, n)
		for i := 0; i < n; i++ {
			obs = append(obs, Observation{Time: float64(times[i]%1000) + 1, Event: raw[i]})
		}
		curve := KaplanMeier(obs)
		prev := 1.0
		for _, p := range curve {
			if p.Survival < 0 || p.Survival > prev+1e-12 {
				return false
			}
			prev = p.Survival
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
