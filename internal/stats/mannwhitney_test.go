package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.5
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Errorf("0.5-sigma shift not detected: %+v", res)
	}
	if res.Statistic >= 0 {
		t.Errorf("a < b should give negative z, got %v", res.Statistic)
	}
}

func TestMannWhitneyNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	for i := range a {
		a[i] = rng.ExpFloat64()
		b[i] = rng.ExpFloat64()
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.001) {
		t.Errorf("identical distributions flagged: %+v", res)
	}
}

func TestMannWhitneyRobustToOutliers(t *testing.T) {
	// Means differ wildly because of one whale, but the bulk of the
	// distributions coincide: the rank test must NOT fire while the
	// difference is a single point.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1e9}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Errorf("single outlier triggered rank test: %+v", res)
	}
	// Welch on the same data is dominated by the outlier's variance and
	// also shouldn't fire — but the rank statistic must be tiny.
	if math.Abs(res.Statistic) > 1 {
		t.Errorf("rank statistic %.2f inflated by outlier", res.Statistic)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 3}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.P) || res.P <= 0 || res.P > 1 {
		t.Errorf("tied data p = %v", res.P)
	}
	// All values identical: p = 1.
	res, err = MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("all-tied p = %v, want 1", res.P)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("singleton accepted")
	}
}

func TestQuickMannWhitneySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 40)
		b := make([]float64, 60)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() * 2
		}
		r1, err1 := MannWhitneyU(a, b)
		r2, err2 := MannWhitneyU(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1.Statistic+r2.Statistic) < 1e-9 && math.Abs(r1.P-r2.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
