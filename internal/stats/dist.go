package stats

import (
	"math"
	"sort"
)

// CDFPoint is one point of an empirical distribution function: Fraction of
// observations are <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// ECDF computes the empirical CDF of xs with one point per distinct value.
// The input is not modified. An empty input yields an empty CDF.
func ECDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CDFPoint
	for i := 0; i < len(sorted); i++ {
		// Emit one point per run of equal values, at the end of the run.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an ECDF (as produced by ECDF) at value v.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	idx := sort.Search(len(cdf), func(i int) bool { return cdf[i].Value > v })
	if idx == 0 {
		return 0
	}
	return cdf[idx-1].Fraction
}

// HistBin is one bin of a histogram over [Lo, Hi).
type HistBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins xs into n equal-width bins spanning [min, max]. Values
// equal to max land in the last bin. It returns nil for empty input or
// non-positive n.
func Histogram(xs []float64, n int) []HistBin {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		return []HistBin{{Lo: lo, Hi: hi, Count: len(xs)}}
	}
	width := (hi - lo) / float64(n)
	bins := make([]HistBin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = lo + float64(i+1)*width
	}
	bins[n-1].Hi = hi
	for _, x := range xs {
		// The quotient can be NaN/Inf for extreme float inputs (width
		// underflow or range overflow); clamp into the valid bin range.
		q := (x - lo) / width
		idx := 0
		if q >= float64(n) || math.IsNaN(q) {
			idx = n - 1
		} else if q > 0 {
			idx = int(q)
		}
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	return bins
}

// LogHistogram bins positive xs into n log10-spaced bins. Non-positive
// values are counted into the first bin. Used for the paper's heavy-tailed
// USD distributions (Figures 6-8).
func LogHistogram(xs []float64, n int) []HistBin {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	maxVal := 0.0
	minPos := math.Inf(1)
	for _, x := range xs {
		if x > maxVal {
			maxVal = x
		}
		if x > 0 && x < minPos {
			minPos = x
		}
	}
	if maxVal <= 0 || math.IsInf(minPos, 1) || minPos == maxVal {
		return []HistBin{{Lo: 0, Hi: maxVal, Count: len(xs)}}
	}
	loExp := math.Log10(minPos)
	hiExp := math.Log10(maxVal)
	width := (hiExp - loExp) / float64(n)
	bins := make([]HistBin, n)
	for i := range bins {
		bins[i].Lo = math.Pow(10, loExp+float64(i)*width)
		bins[i].Hi = math.Pow(10, loExp+float64(i+1)*width)
	}
	bins[0].Lo = minPos
	bins[n-1].Hi = maxVal
	for _, x := range xs {
		if x <= 0 {
			bins[0].Count++
			continue
		}
		idx := int((math.Log10(x) - loExp) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	return bins
}

// Summary bundles the descriptive statistics reported for a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		StdDev: StdDev(xs),
		Min:    xs[0],
		Max:    xs[0],
		P90:    Percentile(xs, 90),
		P99:    Percentile(xs, 99),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}
