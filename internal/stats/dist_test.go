package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDF(t *testing.T) {
	cdf := ECDF([]float64{1, 2, 2, 3})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("got %d points, want %d", len(cdf), len(want))
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, cdf[i], want[i])
		}
	}
	if ECDF(nil) != nil {
		t.Error("empty ECDF not nil")
	}
}

func TestCDFAt(t *testing.T) {
	cdf := ECDF([]float64{10, 20, 30, 40})
	cases := []struct {
		v, want float64
	}{
		{5, 0}, {10, 0.25}, {15, 0.25}, {40, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := CDFAt(cdf, c.v); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if len(bins) != 5 {
		t.Fatalf("got %d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 10 {
		t.Errorf("counts sum to %d, want 10", total)
	}
	// Max value must land in last bin, not overflow.
	if bins[4].Count == 0 {
		t.Error("max value missing from last bin")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	bins := Histogram([]float64{7, 7, 7}, 4)
	if len(bins) != 1 || bins[0].Count != 3 {
		t.Errorf("constant input: %+v", bins)
	}
	if Histogram(nil, 4) != nil || Histogram([]float64{1}, 0) != nil {
		t.Error("degenerate inputs should yield nil")
	}
}

func TestLogHistogram(t *testing.T) {
	xs := []float64{1, 10, 100, 1000, 10000}
	bins := LogHistogram(xs, 4)
	if len(bins) != 4 {
		t.Fatalf("got %d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("counts sum to %d, want %d", total, len(xs))
	}
	// Non-positive values go to the first bin.
	bins = LogHistogram([]float64{0, -5, 1, 100}, 3)
	if bins[0].Count < 2 {
		t.Errorf("non-positive values not in first bin: %+v", bins)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	approx(t, "Mean", s.Mean, 22, 1e-12)
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestQuickECDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		cdf := ECDF(xs)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value <= cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
				return false
			}
		}
		return len(cdf) == 0 || cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramConserved(t *testing.T) {
	f := func(raw []float64, n uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		bins := Histogram(xs, int(n%20)+1)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
