package stats

import (
	"math"
	"sort"
)

// MannWhitneyU performs the two-sided Mann-Whitney U test (Wilcoxon
// rank-sum) comparing the distributions of a and b, using the normal
// approximation with tie correction. For the paper's heavy-tailed income
// feature this is the robust companion to Welch's t-test: it compares
// stochastic ordering rather than means, so a handful of whale wallets
// cannot carry the result.
func MannWhitneyU(a, b []float64) (TestResult, error) {
	n1, n2 := len(a), len(b)
	if n1 < 2 || n2 < 2 {
		return TestResult{}, ErrInsufficientData
	}

	type obs struct {
		v     float64
		group int // 0 = a, 1 = b
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign midranks; accumulate tie-correction term sum(t^3 - t).
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		if t := float64(j - i); t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	mean := fn1 * fn2 / 2
	n := fn1 + fn2
	variance := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		// All observations tied: no evidence of difference.
		return TestResult{Statistic: 0, P: 1}, nil
	}
	// Continuity correction toward the mean.
	diff := u1 - mean
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	z := diff / math.Sqrt(variance)
	return TestResult{Statistic: z, P: TwoSidedP(z)}, nil
}
