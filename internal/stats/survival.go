package stats

import "sort"

// Kaplan-Meier survival estimation. The dropcatching use: for each expired
// name, "death" is its re-registration and the observation is censored at
// the window end — domains that were still unclaimed when the study ended
// contribute exposure time without a catch. This corrects the bias a naive
// Figure 3 histogram has against slow catches near the window edge.

// Observation is one subject: Time until event or censoring (in any unit),
// and whether the event occurred (false = right-censored).
type Observation struct {
	Time  float64
	Event bool
}

// SurvivalPoint is one step of the estimated survival curve: the
// probability of remaining event-free just after Time.
type SurvivalPoint struct {
	Time     float64
	Survival float64
	AtRisk   int
	Events   int
}

// KaplanMeier estimates the survival function S(t) from possibly-censored
// observations. Returns one point per distinct event time, in time order.
func KaplanMeier(obs []Observation) []SurvivalPoint {
	if len(obs) == 0 {
		return nil
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	var out []SurvivalPoint
	s := 1.0
	n := len(sorted)
	i := 0
	for i < n {
		t := sorted[i].Time
		events, leaving := 0, 0
		for i < n && sorted[i].Time == t {
			leaving++
			if sorted[i].Event {
				events++
			}
			i++
		}
		atRisk := n - (i - leaving)
		if events > 0 {
			s *= 1 - float64(events)/float64(atRisk)
			out = append(out, SurvivalPoint{Time: t, Survival: s, AtRisk: atRisk, Events: events})
		}
	}
	return out
}

// SurvivalAt evaluates a Kaplan-Meier curve at time t (1.0 before the
// first event). The curve is sorted by time (KaplanMeier's postcondition),
// so the step holding t is binary-searched.
func SurvivalAt(curve []SurvivalPoint, t float64) float64 {
	// First point strictly after t; the step in force is the one before.
	i := sort.Search(len(curve), func(i int) bool { return curve[i].Time > t })
	if i == 0 {
		return 1.0
	}
	return curve[i-1].Survival
}

// MedianSurvival returns the earliest time at which survival drops to 0.5
// or below, and whether it was reached within the observed range.
func MedianSurvival(curve []SurvivalPoint) (float64, bool) {
	for _, p := range curve {
		if p.Survival <= 0.5 {
			return p.Time, true
		}
	}
	return 0, false
}
