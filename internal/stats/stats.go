// Package stats provides the statistical machinery the paper's analysis
// uses: descriptive statistics, Welch's t-test for numerical features,
// the two-proportion z-test for categorical features, and empirical
// CDF/histogram builders for the figures. Everything is implemented on the
// standard library only (math.Erfc supplies the normal distribution).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a test needs more observations than
// were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator),
// or 0 when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs; the input is not
// reordered.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// TwoSidedP converts a z (or large-df t) statistic into a two-sided p-value
// under the standard normal distribution.
func TwoSidedP(z float64) float64 {
	return 2 * NormalCDF(-math.Abs(z))
}

// TestResult reports the outcome of a significance test.
type TestResult struct {
	Statistic float64 // t or z statistic
	P         float64 // two-sided p-value
	DF        float64 // degrees of freedom (Welch approximation; 0 for z-tests)
}

// Significant reports whether the result is significant at level alpha
// (the paper uses alpha = 0.05).
func (r TestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchT performs Welch's unequal-variance t-test comparing the means of a
// and b. The p-value uses the normal approximation, which is accurate for
// the sample sizes in this study (tens of thousands per group).
func WelchT(a, b []float64) (TestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		// Identical constant samples: no evidence of difference.
		if ma == mb {
			return TestResult{Statistic: 0, P: 1}, nil
		}
		return TestResult{Statistic: math.Inf(sign(ma - mb)), P: 0}, nil
	}
	t := (ma - mb) / math.Sqrt(se2)
	// Welch–Satterthwaite degrees of freedom.
	df := se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	return TestResult{Statistic: t, P: TwoSidedP(t), DF: df}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// TwoProportionZ performs the pooled two-proportion z-test: successes1 of
// n1 trials vs successes2 of n2 trials.
func TwoProportionZ(successes1, n1, successes2, n2 int) (TestResult, error) {
	if n1 == 0 || n2 == 0 {
		return TestResult{}, ErrInsufficientData
	}
	if successes1 < 0 || successes2 < 0 || successes1 > n1 || successes2 > n2 {
		return TestResult{}, errors.New("stats: successes out of range")
	}
	p1 := float64(successes1) / float64(n1)
	p2 := float64(successes2) / float64(n2)
	pool := float64(successes1+successes2) / float64(n1+n2)
	se := math.Sqrt(pool * (1 - pool) * (1/float64(n1) + 1/float64(n2)))
	if se == 0 {
		return TestResult{Statistic: 0, P: 1}, nil
	}
	z := (p1 - p2) / se
	return TestResult{Statistic: z, P: TwoSidedP(z)}, nil
}
