package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "Variance", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "StdDev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice statistics should be zero")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("singleton variance should be zero")
	}
	if Median([]float64{5}) != 5 {
		t.Error("singleton median")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, "P0", Percentile(xs, 0), 1, 0)
	approx(t, "P50", Percentile(xs, 50), 3, 0)
	approx(t, "P100", Percentile(xs, 100), 5, 0)
	approx(t, "P25", Percentile(xs, 25), 2, 1e-12)
	// Interpolation between ranks.
	approx(t, "P10", Percentile(xs, 10), 1.4, 1e-12)
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile reordered its input")
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, "CDF(0)", NormalCDF(0), 0.5, 1e-12)
	approx(t, "CDF(1.96)", NormalCDF(1.96), 0.975, 1e-3)
	approx(t, "CDF(-1.96)", NormalCDF(-1.96), 0.025, 1e-3)
	approx(t, "CDF(5)", NormalCDF(5), 1, 1e-6)
}

func TestTwoSidedP(t *testing.T) {
	approx(t, "p(0)", TwoSidedP(0), 1, 1e-12)
	approx(t, "p(1.96)", TwoSidedP(1.96), 0.05, 1e-3)
	approx(t, "p(-1.96)", TwoSidedP(-1.96), 0.05, 1e-3)
}

func TestWelchTDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()*10 + 100
		b[i] = rng.NormFloat64()*20 + 110
	}
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Errorf("shifted means not detected: %+v", res)
	}
	if res.Statistic >= 0 {
		t.Errorf("statistic sign wrong: %v", res.Statistic)
	}
	if res.DF < 100 {
		t.Errorf("implausible df %v", res.DF)
	}
}

func TestWelchTNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.001) {
		t.Errorf("identical distributions flagged significant: %+v", res)
	}
}

func TestWelchTEdgeCases(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("singleton group accepted")
	}
	res, err := WelchT([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("identical constants: p = %v, want 1", res.P)
	}
	res, err = WelchT([]float64{1, 1, 1}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("distinct constants: p = %v, want 0", res.P)
	}
}

func TestTwoProportionZ(t *testing.T) {
	// Clearly different proportions.
	res, err := TwoProportionZ(500, 1000, 300, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Errorf("50%% vs 30%% not significant: %+v", res)
	}
	// Identical proportions.
	res, err = TwoProportionZ(100, 1000, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Errorf("identical proportions significant: %+v", res)
	}
}

func TestTwoProportionZErrors(t *testing.T) {
	if _, err := TwoProportionZ(1, 0, 1, 10); err == nil {
		t.Error("n1=0 accepted")
	}
	if _, err := TwoProportionZ(11, 10, 1, 10); err == nil {
		t.Error("successes > n accepted")
	}
	if _, err := TwoProportionZ(-1, 10, 1, 10); err == nil {
		t.Error("negative successes accepted")
	}
	// Degenerate: all success in both groups -> se = 0, p = 1.
	res, err := TwoProportionZ(10, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("degenerate case p = %v, want 1", res.P)
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		v := Percentile(xs, float64(p%101))
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWelchSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 50)
		b := make([]float64, 70)
		for i := range a {
			a[i] = rng.NormFloat64() * 3
		}
		for i := range b {
			b[i] = rng.NormFloat64()*2 + 1
		}
		r1, err1 := WelchT(a, b)
		r2, err2 := WelchT(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1.Statistic+r2.Statistic) < 1e-9 && math.Abs(r1.P-r2.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
