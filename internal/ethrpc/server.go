// Package ethrpc exposes the simulated chain over a JSON-RPC 2.0 subset
// (eth_blockNumber, eth_getBalance, eth_getTransactionByHash, eth_getLogs),
// the interface a researcher doing *direct* chain extraction would use —
// the approach the paper contrasts with its subgraph crawl (§3.1): raw
// logs carry only keccak-256 label hashes, so recovering the plaintext
// names requires brute force (see internal/recovery), which is why prior
// work topped out at 90.1% completeness.
package ethrpc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/httpjson"
)

// request is a JSON-RPC 2.0 request.
type request struct {
	JSONRPC string            `json:"jsonrpc"`
	ID      json.RawMessage   `json:"id"`
	Method  string            `json:"method"`
	Params  []json.RawMessage `json:"params"`
}

// response is a JSON-RPC 2.0 response.
type response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  any             `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// RPCLog is the wire form of a log: topics only, no decoded names —
// exactly the visibility a raw-chain extractor has.
type RPCLog struct {
	Address     string   `json:"address"`
	Topics      []string `json:"topics"`
	Event       string   `json:"event"` // event signature name (public ABI knowledge)
	BlockNumber string   `json:"blockNumber"`
	TxHash      string   `json:"transactionHash"`
	Timestamp   string   `json:"timestamp"`
}

// RPCTransaction is the wire form of a transaction.
type RPCTransaction struct {
	Hash        string `json:"hash"`
	BlockNumber string `json:"blockNumber"`
	From        string `json:"from"`
	To          string `json:"to"`
	Value       string `json:"value"`
	Timestamp   string `json:"timestamp"`
}

// LogQuery is the eth_getLogs parameter object.
type LogQuery struct {
	FromBlock string   `json:"fromBlock,omitempty"`
	ToBlock   string   `json:"toBlock,omitempty"`
	Address   string   `json:"address,omitempty"`
	Events    []string `json:"events,omitempty"`
}

// Server serves the chain over JSON-RPC.
type Server struct {
	chain *chain.Chain
}

// NewServer wraps a chain.
func NewServer(c *chain.Chain) *Server { return &Server{chain: c} }

// ServeHTTP implements http.Handler (POST only, single requests).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeRPC(w, response{JSONRPC: "2.0", Error: &rpcError{-32700, "parse error: " + err.Error()}})
		return
	}
	resp := response{JSONRPC: "2.0", ID: req.ID}
	result, err := s.dispatch(r.Context(), &req)
	if err != nil {
		resp.Error = &rpcError{-32000, err.Error()}
	} else {
		resp.Result = result
	}
	writeRPC(w, resp)
}

func writeRPC(w http.ResponseWriter, resp response) {
	// A failed response write means the client is gone; nothing to repair.
	_ = httpjson.Write(w, http.StatusOK, &resp)
}

func (s *Server) dispatch(ctx context.Context, req *request) (any, error) {
	switch req.Method {
	case "eth_blockNumber":
		return hexUint(s.chain.HeadBlock()), nil
	case "eth_getBalance":
		var addrStr string
		if err := param(req, 0, &addrStr); err != nil {
			return nil, err
		}
		addr, err := ethtypes.ParseAddress(addrStr)
		if err != nil {
			return nil, err
		}
		return "0x" + s.chain.BalanceOf(addr).BigInt().Text(16), nil
	case "eth_getTransactionByHash":
		var hashStr string
		if err := param(req, 0, &hashStr); err != nil {
			return nil, err
		}
		h, err := ethtypes.ParseHash(hashStr)
		if err != nil {
			return nil, err
		}
		tx, err := s.chain.TxByHash(h)
		if err != nil {
			return nil, nil // JSON-RPC convention: null for unknown tx
		}
		return toRPCTx(tx), nil
	case "eth_getLogs":
		var q LogQuery
		if err := param(req, 0, &q); err != nil {
			return nil, err
		}
		filter := chain.LogFilter{Events: q.Events}
		var err error
		if filter.FromBlock, err = parseHexBlock(q.FromBlock); err != nil {
			return nil, err
		}
		if filter.ToBlock, err = parseHexBlock(q.ToBlock); err != nil {
			return nil, err
		}
		if q.Address != "" {
			if filter.Address, err = ethtypes.ParseAddress(q.Address); err != nil {
				return nil, err
			}
		}
		logs := s.chain.FilterLogs(filter)
		out := make([]RPCLog, 0, len(logs))
		for i, l := range logs {
			// Large log scans respect the request deadline propagated by
			// the server's overload middleware.
			if i%1024 == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out = append(out, toRPCLog(l))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("method %q not found", req.Method)
	}
}

func param(req *request, i int, v any) error {
	if i >= len(req.Params) {
		return fmt.Errorf("missing param %d", i)
	}
	return json.Unmarshal(req.Params[i], v)
}

// toRPCLog strips decoded data down to what raw chain access exposes:
// topics and the ABI-derivable event name, but none of the plaintext
// strings our simulated contracts decode into Log.Data.
func toRPCLog(l *chain.Log) RPCLog {
	topics := make([]string, 0, len(l.Topics))
	for _, t := range l.Topics {
		topics = append(topics, t.Hex())
	}
	return RPCLog{
		Address:     strings.ToLower(l.Address.Hex()),
		Topics:      topics,
		Event:       l.Event,
		BlockNumber: hexUint(l.BlockNumber),
		TxHash:      l.TxHash.Hex(),
		Timestamp:   hexUint(uint64(l.Timestamp)),
	}
}

func toRPCTx(tx *chain.Transaction) RPCTransaction {
	return RPCTransaction{
		Hash:        tx.Hash.Hex(),
		BlockNumber: hexUint(tx.BlockNumber),
		From:        strings.ToLower(tx.From.Hex()),
		To:          strings.ToLower(tx.To.Hex()),
		Value:       "0x" + tx.Value.BigInt().Text(16),
		Timestamp:   hexUint(uint64(tx.Timestamp)),
	}
}

func hexUint(v uint64) string { return "0x" + strconv.FormatUint(v, 16) }

func parseHexBlock(s string) (uint64, error) {
	if s == "" || s == "latest" {
		return 0, nil
	}
	s = strings.TrimPrefix(s, "0x")
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad block %q: %w", s, err)
	}
	return v, nil
}
