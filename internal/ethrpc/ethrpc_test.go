package ethrpc

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
)

const genesis = 1580515200

func newRPCPair(t *testing.T) (*chain.Chain, *ens.Service, *Client) {
	t.Helper()
	c := chain.New(genesis)
	svc := ens.Deploy(c, pricing.NewOracleNoise(0))
	srv := httptest.NewServer(NewServer(c))
	t.Cleanup(srv.Close)
	return c, svc, NewClient(srv.URL)
}

func TestBlockNumberAndBalance(t *testing.T) {
	c, _, client := newRPCPair(t)
	alice := ethtypes.DeriveAddress("rpc-alice")
	bob := ethtypes.DeriveAddress("rpc-bob")
	c.Mint(alice, ethtypes.Ether(123))
	c.Transfer(genesis+120, alice, bob, ethtypes.Ether(23))

	ctx := context.Background()
	bn, err := client.BlockNumber(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bn != c.HeadBlock() {
		t.Errorf("blockNumber = %d, want %d", bn, c.HeadBlock())
	}
	bal, err := client.Balance(ctx, alice)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Cmp(ethtypes.Ether(100)) != 0 {
		t.Errorf("balance = %s", bal)
	}
}

func TestGetTransactionByHash(t *testing.T) {
	c, _, client := newRPCPair(t)
	alice := ethtypes.DeriveAddress("rpc-a2")
	c.Mint(alice, ethtypes.Ether(5))
	rcpt, err := c.Transfer(genesis+12, alice, alice, ethtypes.NewWei(7))
	if err != nil {
		t.Fatal(err)
	}
	var tx RPCTransaction
	if err := client.Call(context.Background(), "eth_getTransactionByHash", &tx, rcpt.Tx.Hash.Hex()); err != nil {
		t.Fatal(err)
	}
	if tx.Hash != rcpt.Tx.Hash.Hex() || tx.Value != "0x7" {
		t.Errorf("tx = %+v", tx)
	}
	// Unknown hash -> null result.
	var null *RPCTransaction
	if err := client.Call(context.Background(), "eth_getTransactionByHash", &null, ethtypes.Hash{0x01}.Hex()); err != nil {
		t.Fatal(err)
	}
	if null != nil {
		t.Errorf("unknown hash returned %+v", null)
	}
}

func TestGetLogsExposesHashesNotNames(t *testing.T) {
	c, svc, client := newRPCPair(t)
	alice := ethtypes.DeriveAddress("rpc-a3")
	c.Mint(alice, ethtypes.Ether(1000))
	rcpt, err := svc.Register(genesis+60, alice, alice, "secretname", ens.Year, svc.PriceWei("secretname", ens.Year, genesis+60))
	if err != nil || rcpt.Err != nil {
		t.Fatalf("register: %v %v", err, rcpt)
	}

	logs, err := client.GetLogs(context.Background(), LogQuery{Events: []string{"NameRegistered"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 {
		t.Fatalf("logs = %d", len(logs))
	}
	l := logs[0]
	if len(l.Topics) == 0 || l.Topics[0] != ens.LabelHash("secretname").Hex() {
		t.Errorf("topic0 = %v, want label hash", l.Topics)
	}
	// The crucial property: raw RPC logs never leak the plaintext label.
	for _, topic := range l.Topics {
		if strings.Contains(topic, "secretname") {
			t.Error("plaintext label leaked in topics")
		}
	}
	if strings.Contains(l.Event, "secretname") || strings.Contains(l.Address, "secretname") {
		t.Error("plaintext label leaked")
	}
}

func TestGetLogsPaged(t *testing.T) {
	c, svc, client := newRPCPair(t)
	alice := ethtypes.DeriveAddress("rpc-a4")
	c.Mint(alice, ethtypes.Ether(100000))
	labels := []string{"pagedone", "pagedtwo", "pagedthree", "pagedfour"}
	ts := int64(genesis)
	for _, l := range labels {
		ts += 86400 * 30
		rcpt, err := svc.Register(ts, alice, alice, l, ens.Year, svc.PriceWei(l, ens.Year, ts))
		if err != nil || rcpt.Err != nil {
			t.Fatalf("register %s: %v %v", l, err, rcpt)
		}
	}
	// Tiny block step forces many windows.
	logs, err := client.GetLogsPaged(context.Background(), []string{"NameRegistered"}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != len(labels) {
		t.Errorf("paged logs = %d, want %d", len(logs), len(labels))
	}
	seen := map[string]bool{}
	for _, l := range logs {
		if seen[l.TxHash] {
			t.Error("duplicate log across windows")
		}
		seen[l.TxHash] = true
	}
}

func TestRPCErrors(t *testing.T) {
	_, _, client := newRPCPair(t)
	ctx := context.Background()
	if err := client.Call(ctx, "eth_noSuchMethod", nil); err == nil {
		t.Error("unknown method succeeded")
	}
	var s string
	if err := client.Call(ctx, "eth_getBalance", &s, "nothex"); err == nil {
		t.Error("bad address succeeded")
	}
	if err := client.Call(ctx, "eth_getBalance", &s); err == nil {
		t.Error("missing param succeeded")
	}
}

func TestRPCRejectsGet(t *testing.T) {
	c := chain.New(genesis)
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET -> %d", resp.StatusCode)
	}
}
