package ethrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"time"

	"ensdropcatch/internal/ethtypes"
)

// Client is a minimal JSON-RPC client for the subset Server implements.
type Client struct {
	Endpoint   string
	HTTPClient *http.Client

	nextID int64
}

// NewClient returns a client for the endpoint.
func NewClient(endpoint string) *Client {
	return &Client{Endpoint: endpoint, HTTPClient: &http.Client{Timeout: 30 * time.Second}}
}

// Call performs one RPC and decodes the result into out.
func (c *Client) Call(ctx context.Context, method string, out any, params ...any) error {
	c.nextID++
	rawParams := make([]json.RawMessage, 0, len(params))
	for _, p := range params {
		b, err := json.Marshal(p)
		if err != nil {
			return fmt.Errorf("ethrpc: marshal param: %w", err)
		}
		rawParams = append(rawParams, b)
	}
	id, _ := json.Marshal(c.nextID)
	body, err := json.Marshal(request{JSONRPC: "2.0", ID: id, Method: method, Params: rawParams})
	if err != nil {
		return fmt.Errorf("ethrpc: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return fmt.Errorf("ethrpc: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return fmt.Errorf("ethrpc: read: %w", err)
	}
	var envelope struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcError       `json:"error"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		return fmt.Errorf("ethrpc: decode: %w", err)
	}
	if envelope.Error != nil {
		return fmt.Errorf("ethrpc: server error %d: %s", envelope.Error.Code, envelope.Error.Message)
	}
	if out == nil || len(envelope.Result) == 0 {
		return nil // null/absent result leaves out at its zero value
	}
	return json.Unmarshal(envelope.Result, out)
}

// BlockNumber returns the chain head block.
func (c *Client) BlockNumber(ctx context.Context) (uint64, error) {
	var s string
	if err := c.Call(ctx, "eth_blockNumber", &s); err != nil {
		return 0, err
	}
	return parseHexBlock(s)
}

// GetLogs retrieves logs matching the query, paging by block range so a
// multi-year history never arrives as one giant response.
func (c *Client) GetLogs(ctx context.Context, q LogQuery) ([]RPCLog, error) {
	var out []RPCLog
	return out, c.Call(ctx, "eth_getLogs", &out, q)
}

// GetLogsPaged walks [from, head] in windows of blockStep.
func (c *Client) GetLogsPaged(ctx context.Context, events []string, blockStep uint64) ([]RPCLog, error) {
	if blockStep == 0 {
		blockStep = 500_000
	}
	head, err := c.BlockNumber(ctx)
	if err != nil {
		return nil, err
	}
	var out []RPCLog
	for from := uint64(1); from <= head; from += blockStep {
		to := from + blockStep - 1
		if to > head {
			to = head
		}
		batch, err := c.GetLogs(ctx, LogQuery{
			FromBlock: hexUint(from),
			ToBlock:   hexUint(to),
			Events:    events,
		})
		if err != nil {
			return nil, fmt.Errorf("logs [%d, %d]: %w", from, to, err)
		}
		out = append(out, batch...)
	}
	return out, nil
}

// Balance returns an address balance in wei.
func (c *Client) Balance(ctx context.Context, addr ethtypes.Address) (ethtypes.Wei, error) {
	var s string
	if err := c.Call(ctx, "eth_getBalance", &s, addr.Hex()); err != nil {
		return ethtypes.Wei{}, err
	}
	if len(s) < 2 || s[:2] != "0x" {
		return ethtypes.Wei{}, fmt.Errorf("ethrpc: bad balance %q", s)
	}
	i, ok := new(big.Int).SetString(s[2:], 16)
	if !ok || i.Sign() < 0 {
		return ethtypes.Wei{}, fmt.Errorf("ethrpc: bad balance %q", s)
	}
	return ethtypes.WeiFromBig(i), nil
}
