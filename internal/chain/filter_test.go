package chain

import (
	"testing"

	"ensdropcatch/internal/ethtypes"
)

// buildLogChain creates a chain with events from two contracts across
// several blocks.
func buildLogChain(t *testing.T) (*Chain, ethtypes.Address, ethtypes.Address) {
	t.Helper()
	c := New(genesis)
	user := ethtypes.DeriveAddress("f-user")
	c.Mint(user, ethtypes.Ether(100))
	contractA := ethtypes.DeriveAddress("f-contract-a")
	contractB := ethtypes.DeriveAddress("f-contract-b")
	topic := ethtypes.HashData([]byte("special"))

	for i := 0; i < 10; i++ {
		target := contractA
		event := "Ping"
		if i%2 == 1 {
			target = contractB
			event = "Pong"
		}
		ts := genesis + int64(i)*120 // a new block every 10 blocks' worth
		_, err := c.Apply(ts, user, target, ethtypes.Wei{}, nil, "emit", func(ctx *TxContext) error {
			var topics []ethtypes.Hash
			if i == 4 {
				topics = []ethtypes.Hash{topic}
			}
			ctx.Emit(event, topics, map[string]string{"i": string(rune('0' + i))})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return c, contractA, contractB
}

func TestFilterLogsByAddressAndEvent(t *testing.T) {
	c, a, b := buildLogChain(t)
	if got := len(c.FilterLogs(LogFilter{Address: a})); got != 5 {
		t.Errorf("contract A logs = %d, want 5", got)
	}
	if got := len(c.FilterLogs(LogFilter{Address: b, Events: []string{"Pong"}})); got != 5 {
		t.Errorf("B/Pong logs = %d, want 5", got)
	}
	if got := len(c.FilterLogs(LogFilter{Address: b, Events: []string{"Ping"}})); got != 0 {
		t.Errorf("B/Ping logs = %d, want 0", got)
	}
	if got := len(c.FilterLogs(LogFilter{})); got != 10 {
		t.Errorf("unfiltered logs = %d, want 10", got)
	}
}

func TestFilterLogsByBlockRange(t *testing.T) {
	c, _, _ := buildLogChain(t)
	all := c.FilterLogs(LogFilter{})
	mid := all[5].BlockNumber
	upper := c.FilterLogs(LogFilter{FromBlock: mid})
	for _, l := range upper {
		if l.BlockNumber < mid {
			t.Fatal("FromBlock violated")
		}
	}
	lower := c.FilterLogs(LogFilter{ToBlock: mid - 1})
	if len(upper)+len(lower) != len(all) {
		t.Errorf("range split %d + %d != %d", len(upper), len(lower), len(all))
	}
	// Incremental-indexer pattern: watermark walk sees each log once.
	seen := 0
	from := uint64(0)
	for {
		batch := c.FilterLogs(LogFilter{FromBlock: from, ToBlock: from + 20})
		seen += len(batch)
		if from+20 >= c.HeadBlock() {
			break
		}
		from += 21
	}
	if seen != len(all) {
		t.Errorf("watermark walk saw %d logs, want %d", seen, len(all))
	}
}

func TestFilterLogsByTopic(t *testing.T) {
	c, _, _ := buildLogChain(t)
	topic := ethtypes.HashData([]byte("special"))
	got := c.FilterLogs(LogFilter{Topic0: topic})
	if len(got) != 1 {
		t.Fatalf("topic logs = %d, want 1", len(got))
	}
	if got[0].Topics[0] != topic {
		t.Error("wrong log matched")
	}
}
