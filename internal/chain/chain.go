// Package chain implements the simulated Ethereum blockchain that the rest
// of the system runs on: accounts with balances and nonces, value-transfer
// transactions, contract calls that emit event logs, and block production
// with deterministic timestamps. The ENS contract suite (internal/ens)
// executes on top of it, and the subgraph and Etherscan substrates index
// what it records — mirroring how the paper's data sources sit on top of
// mainnet.
package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ensdropcatch/internal/ethtypes"
)

// BlockInterval is the simulated seconds-per-block (mainnet post-merge).
const BlockInterval = 12

// Common errors returned by chain operations.
var (
	ErrInsufficientBalance = errors.New("chain: insufficient balance")
	ErrTimeRegression      = errors.New("chain: timestamp before chain head")
	ErrUnknownTx           = errors.New("chain: unknown transaction")
)

// Transaction is a recorded on-chain transaction. Fields mirror what the
// Etherscan API exposes (the paper crawls sender, receiver, value, hash,
// and timestamp).
type Transaction struct {
	Hash        ethtypes.Hash
	BlockNumber uint64
	Timestamp   int64
	From        ethtypes.Address
	To          ethtypes.Address
	Value       ethtypes.Wei
	Input       []byte // calldata; nil for plain transfers
	Method      string // decoded method name for contract calls ("" for transfers)
	Failed      bool
}

// Log is an emitted contract event, the unit the subgraph indexes.
type Log struct {
	Address     ethtypes.Address // emitting contract
	Event       string           // decoded event name
	Topics      []ethtypes.Hash
	Data        map[string]string // decoded fields (name -> string form)
	BlockNumber uint64
	TxHash      ethtypes.Hash
	Timestamp   int64
	Index       int // global log index
}

// Receipt reports the outcome of an applied transaction.
type Receipt struct {
	Tx   *Transaction
	Logs []*Log
	Err  error // contract revert reason; nil on success
}

// TxContext is handed to contract code during execution. It lets the
// contract emit logs and move value that was attached to the call.
type TxContext struct {
	chain *Chain
	tx    *Transaction
	logs  []*Log
	// moved tracks balance effects applied so far so a revert can undo them.
	moved []balanceDelta
}

type balanceDelta struct {
	addr ethtypes.Address
	wei  ethtypes.Wei
	add  bool
}

// Timestamp returns the block timestamp of the executing transaction.
func (ctx *TxContext) Timestamp() int64 { return ctx.tx.Timestamp }

// From returns the transaction sender.
func (ctx *TxContext) From() ethtypes.Address { return ctx.tx.From }

// Value returns the wei attached to the call.
func (ctx *TxContext) Value() ethtypes.Wei { return ctx.tx.Value }

// Emit records a contract event.
func (ctx *TxContext) Emit(event string, topics []ethtypes.Hash, data map[string]string) {
	ctx.logs = append(ctx.logs, &Log{
		Address:     ctx.tx.To,
		Event:       event,
		Topics:      topics,
		Data:        data,
		BlockNumber: ctx.tx.BlockNumber,
		TxHash:      ctx.tx.Hash,
		Timestamp:   ctx.tx.Timestamp,
	})
}

// TransferFromContract sends wei held by the called contract to dst (e.g. a
// refund of overpayment). It fails if the contract balance is insufficient.
func (ctx *TxContext) TransferFromContract(dst ethtypes.Address, amount ethtypes.Wei) error {
	c := ctx.chain
	bal := c.balances[ctx.tx.To]
	if bal.Cmp(amount) < 0 {
		return ErrInsufficientBalance
	}
	c.balances[ctx.tx.To] = bal.Sub(amount)
	c.balances[dst] = c.balances[dst].Add(amount)
	ctx.moved = append(ctx.moved,
		balanceDelta{ctx.tx.To, amount, true},
		balanceDelta{dst, amount, false})
	return nil
}

// Chain is the in-memory simulated blockchain. All methods are safe for
// concurrent use.
type Chain struct {
	mu          sync.RWMutex
	genesis     int64
	headTime    int64
	txs         []*Transaction
	txByHash    map[ethtypes.Hash]*Transaction
	txsByAddr   map[ethtypes.Address][]*Transaction
	logs        []*Log
	logsByAddr  map[ethtypes.Address][]*Log
	balances    map[ethtypes.Address]ethtypes.Wei
	nonces      map[ethtypes.Address]uint64
	totalMinted ethtypes.Wei
}

// New creates a chain whose genesis block carries the given unix timestamp.
func New(genesisTime int64) *Chain {
	return &Chain{
		genesis:    genesisTime,
		headTime:   genesisTime,
		txByHash:   make(map[ethtypes.Hash]*Transaction),
		txsByAddr:  make(map[ethtypes.Address][]*Transaction),
		logsByAddr: make(map[ethtypes.Address][]*Log),
		balances:   make(map[ethtypes.Address]ethtypes.Wei),
		nonces:     make(map[ethtypes.Address]uint64),
	}
}

// Genesis returns the genesis timestamp.
func (c *Chain) Genesis() int64 { return c.genesis }

// HeadTime returns the timestamp of the most recent transaction (or genesis
// if the chain is empty).
func (c *Chain) HeadTime() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.headTime
}

// BlockNumberAt converts a timestamp to the containing block number.
func (c *Chain) BlockNumberAt(ts int64) uint64 {
	if ts < c.genesis {
		return 0
	}
	return uint64((ts-c.genesis)/BlockInterval) + 1
}

// Mint credits amount to addr out of thin air (the simulation faucet;
// stands in for mining rewards and bridged deposits).
func (c *Chain) Mint(addr ethtypes.Address, amount ethtypes.Wei) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.balances[addr] = c.balances[addr].Add(amount)
	c.totalMinted = c.totalMinted.Add(amount)
}

// BalanceOf returns addr's current balance.
func (c *Chain) BalanceOf(addr ethtypes.Address) ethtypes.Wei {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.balances[addr]
}

// Nonce returns addr's next nonce.
func (c *Chain) Nonce(addr ethtypes.Address) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nonces[addr]
}

// Transfer applies a plain value transfer at timestamp ts.
func (c *Chain) Transfer(ts int64, from, to ethtypes.Address, value ethtypes.Wei) (*Receipt, error) {
	return c.Apply(ts, from, to, value, nil, "", nil)
}

// Apply executes a transaction at timestamp ts. If action is non-nil it
// runs as contract code with a TxContext; returning an error reverts the
// value transfer and discards emitted logs, but the failed transaction is
// still recorded on-chain (as on Ethereum). Timestamps must be
// non-decreasing across calls.
func (c *Chain) Apply(ts int64, from, to ethtypes.Address, value ethtypes.Wei, input []byte, method string, action func(*TxContext) error) (*Receipt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if ts < c.headTime {
		return nil, fmt.Errorf("%w: %d < %d", ErrTimeRegression, ts, c.headTime)
	}
	if c.balances[from].Cmp(value) < 0 {
		return nil, fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance, from, c.balances[from], value)
	}

	nonce := c.nonces[from]
	c.nonces[from] = nonce + 1
	c.headTime = ts

	tx := &Transaction{
		Hash:        txHash(from, nonce),
		BlockNumber: c.blockNumberAtLocked(ts),
		Timestamp:   ts,
		From:        from,
		To:          to,
		Value:       value,
		Input:       input,
		Method:      method,
	}

	// Move the attached value.
	c.balances[from] = c.balances[from].Sub(value)
	c.balances[to] = c.balances[to].Add(value)

	ctx := &TxContext{chain: c, tx: tx}
	var execErr error
	if action != nil {
		execErr = action(ctx)
	}
	if execErr != nil {
		// Revert: undo value transfer and any contract-initiated moves.
		for i := len(ctx.moved) - 1; i >= 0; i-- {
			d := ctx.moved[i]
			if d.add {
				c.balances[d.addr] = c.balances[d.addr].Add(d.wei)
			} else {
				c.balances[d.addr] = c.balances[d.addr].Sub(d.wei)
			}
		}
		c.balances[to] = c.balances[to].Sub(value)
		c.balances[from] = c.balances[from].Add(value)
		tx.Failed = true
		ctx.logs = nil
	}

	c.txs = append(c.txs, tx)
	c.txByHash[tx.Hash] = tx
	c.txsByAddr[from] = append(c.txsByAddr[from], tx)
	if to != from {
		c.txsByAddr[to] = append(c.txsByAddr[to], tx)
	}
	for _, l := range ctx.logs {
		l.Index = len(c.logs)
		c.logs = append(c.logs, l)
		c.logsByAddr[l.Address] = append(c.logsByAddr[l.Address], l)
	}
	return &Receipt{Tx: tx, Logs: ctx.logs, Err: execErr}, nil
}

func (c *Chain) blockNumberAtLocked(ts int64) uint64 {
	if ts < c.genesis {
		return 0
	}
	return uint64((ts-c.genesis)/BlockInterval) + 1
}

func txHash(from ethtypes.Address, nonce uint64) ethtypes.Hash {
	buf := make([]byte, len(from)+8)
	copy(buf, from[:])
	for i := 0; i < 8; i++ {
		buf[len(from)+i] = byte(nonce >> (8 * i))
	}
	return ethtypes.HashData(buf)
}

// TxByHash looks up a transaction.
func (c *Chain) TxByHash(h ethtypes.Hash) (*Transaction, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tx, ok := c.txByHash[h]
	if !ok {
		return nil, ErrUnknownTx
	}
	return tx, nil
}

// TxCount returns the total number of recorded transactions.
func (c *Chain) TxCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.txs)
}

// TxsByAddress returns all transactions where addr is sender or receiver,
// in chain order. The returned slice is a copy.
func (c *Chain) TxsByAddress(addr ethtypes.Address) []*Transaction {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Transaction(nil), c.txsByAddr[addr]...)
}

// Transactions returns every recorded transaction in chain order (copy).
func (c *Chain) Transactions() []*Transaction {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Transaction(nil), c.txs...)
}

// Logs returns every emitted log in chain order (copy).
func (c *Chain) Logs() []*Log {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Log(nil), c.logs...)
}

// LogsByAddress returns logs emitted by the given contract (copy).
func (c *Chain) LogsByAddress(addr ethtypes.Address) []*Log {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Log(nil), c.logsByAddr[addr]...)
}

// LogsByEvent returns logs with the given decoded event name (copy).
func (c *Chain) LogsByEvent(event string) []*Log {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Log
	for _, l := range c.logs {
		if l.Event == event {
			out = append(out, l)
		}
	}
	return out
}

// AddressesWithActivity returns every address that has sent or received at
// least one transaction, in deterministic (sorted) order.
func (c *Chain) AddressesWithActivity() []ethtypes.Address {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ethtypes.Address, 0, len(c.txsByAddr))
	for a := range c.txsByAddr {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < ethtypes.AddressLength; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
