package chain

import (
	"errors"
	"testing"
	"testing/quick"

	"ensdropcatch/internal/ethtypes"
)

const genesis = 1_500_000_000

func newFunded(t *testing.T, labels ...string) (*Chain, []ethtypes.Address) {
	t.Helper()
	c := New(genesis)
	addrs := make([]ethtypes.Address, len(labels))
	for i, l := range labels {
		addrs[i] = ethtypes.DeriveAddress(l)
		c.Mint(addrs[i], ethtypes.Ether(100))
	}
	return c, addrs
}

func TestTransferMovesBalance(t *testing.T) {
	c, a := newFunded(t, "alice", "bob")
	rcpt, err := c.Transfer(genesis+12, a[0], a[1], ethtypes.Ether(30))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Tx.Failed {
		t.Fatal("transfer marked failed")
	}
	if got := c.BalanceOf(a[0]); got.Cmp(ethtypes.Ether(70)) != 0 {
		t.Errorf("sender balance %s", got)
	}
	if got := c.BalanceOf(a[1]); got.Cmp(ethtypes.Ether(130)) != 0 {
		t.Errorf("receiver balance %s", got)
	}
}

func TestTransferInsufficientBalance(t *testing.T) {
	c, a := newFunded(t, "alice", "bob")
	_, err := c.Transfer(genesis+12, a[0], a[1], ethtypes.Ether(1000))
	if !errors.Is(err, ErrInsufficientBalance) {
		t.Errorf("err = %v, want ErrInsufficientBalance", err)
	}
	if c.TxCount() != 0 {
		t.Error("failed submission recorded a transaction")
	}
}

func TestTimeMustNotRegress(t *testing.T) {
	c, a := newFunded(t, "alice", "bob")
	if _, err := c.Transfer(genesis+100, a[0], a[1], ethtypes.NewWei(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transfer(genesis+50, a[0], a[1], ethtypes.NewWei(1)); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("err = %v, want ErrTimeRegression", err)
	}
	// Equal timestamps are fine (same block).
	if _, err := c.Transfer(genesis+100, a[0], a[1], ethtypes.NewWei(1)); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestBlockNumbering(t *testing.T) {
	c := New(genesis)
	if bn := c.BlockNumberAt(genesis); bn != 1 {
		t.Errorf("genesis block = %d, want 1", bn)
	}
	if bn := c.BlockNumberAt(genesis + 11); bn != 1 {
		t.Errorf("t+11 block = %d, want 1", bn)
	}
	if bn := c.BlockNumberAt(genesis + 12); bn != 2 {
		t.Errorf("t+12 block = %d, want 2", bn)
	}
	if bn := c.BlockNumberAt(genesis - 1); bn != 0 {
		t.Errorf("pre-genesis block = %d, want 0", bn)
	}
}

func TestContractCallEmitsLogs(t *testing.T) {
	c, a := newFunded(t, "alice")
	contract := ethtypes.DeriveAddress("registrar-contract")
	rcpt, err := c.Apply(genesis+24, a[0], contract, ethtypes.Ether(1), []byte{0x01}, "register",
		func(ctx *TxContext) error {
			ctx.Emit("NameRegistered", nil, map[string]string{"name": "gold"})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rcpt.Logs) != 1 || rcpt.Logs[0].Event != "NameRegistered" {
		t.Fatalf("logs = %+v", rcpt.Logs)
	}
	if rcpt.Logs[0].Data["name"] != "gold" {
		t.Error("log data lost")
	}
	if got := c.LogsByEvent("NameRegistered"); len(got) != 1 {
		t.Errorf("LogsByEvent returned %d", len(got))
	}
	if got := c.LogsByAddress(contract); len(got) != 1 {
		t.Errorf("LogsByAddress returned %d", len(got))
	}
	if bal := c.BalanceOf(contract); bal.Cmp(ethtypes.Ether(1)) != 0 {
		t.Errorf("contract balance %s", bal)
	}
}

func TestRevertRestoresBalancesAndDropsLogs(t *testing.T) {
	c, a := newFunded(t, "alice", "beneficiary")
	contract := ethtypes.DeriveAddress("reverting-contract")
	boom := errors.New("boom")
	rcpt, err := c.Apply(genesis+24, a[0], contract, ethtypes.Ether(5), nil, "register",
		func(ctx *TxContext) error {
			ctx.Emit("ShouldVanish", nil, nil)
			if err := ctx.TransferFromContract(a[1], ethtypes.Ether(2)); err != nil {
				return err
			}
			return boom
		})
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Tx.Failed || !errors.Is(rcpt.Err, boom) {
		t.Fatalf("receipt = %+v", rcpt)
	}
	if len(rcpt.Logs) != 0 {
		t.Error("reverted call kept logs")
	}
	if bal := c.BalanceOf(a[0]); bal.Cmp(ethtypes.Ether(100)) != 0 {
		t.Errorf("sender balance %s after revert", bal)
	}
	if bal := c.BalanceOf(a[1]); bal.Cmp(ethtypes.Ether(100)) != 0 {
		t.Errorf("beneficiary balance %s after revert", bal)
	}
	if bal := c.BalanceOf(contract); !bal.IsZero() {
		t.Errorf("contract balance %s after revert", bal)
	}
	// The failed transaction is still on-chain, like Ethereum.
	if c.TxCount() != 1 {
		t.Error("failed tx not recorded")
	}
}

func TestRefundFromContract(t *testing.T) {
	c, a := newFunded(t, "alice")
	contract := ethtypes.DeriveAddress("refunding-contract")
	_, err := c.Apply(genesis+24, a[0], contract, ethtypes.Ether(10), nil, "register",
		func(ctx *TxContext) error {
			// Keep 3 ETH, refund 7.
			return ctx.TransferFromContract(ctx.From(), ethtypes.Ether(7))
		})
	if err != nil {
		t.Fatal(err)
	}
	if bal := c.BalanceOf(a[0]); bal.Cmp(ethtypes.Ether(97)) != 0 {
		t.Errorf("sender balance %s, want 97 ETH", bal)
	}
	if bal := c.BalanceOf(contract); bal.Cmp(ethtypes.Ether(3)) != 0 {
		t.Errorf("contract balance %s, want 3 ETH", bal)
	}
}

func TestTxIndexes(t *testing.T) {
	c, a := newFunded(t, "alice", "bob", "carol")
	c.Transfer(genesis+12, a[0], a[1], ethtypes.Ether(1))
	c.Transfer(genesis+24, a[1], a[2], ethtypes.Ether(1))
	c.Transfer(genesis+36, a[0], a[2], ethtypes.Ether(1))

	if got := len(c.TxsByAddress(a[0])); got != 2 {
		t.Errorf("alice txs = %d, want 2", got)
	}
	if got := len(c.TxsByAddress(a[1])); got != 2 {
		t.Errorf("bob txs = %d, want 2", got)
	}
	if got := len(c.TxsByAddress(a[2])); got != 2 {
		t.Errorf("carol txs = %d, want 2", got)
	}
	if got := c.TxCount(); got != 3 {
		t.Errorf("TxCount = %d", got)
	}
	tx := c.TxsByAddress(a[0])[0]
	byHash, err := c.TxByHash(tx.Hash)
	if err != nil || byHash != tx {
		t.Errorf("TxByHash mismatch: %v %v", byHash, err)
	}
	if _, err := c.TxByHash(ethtypes.Hash{0xde, 0xad}); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("unknown hash err = %v", err)
	}
}

func TestSelfTransferNotDoubleIndexed(t *testing.T) {
	c, a := newFunded(t, "alice")
	if _, err := c.Transfer(genesis+12, a[0], a[0], ethtypes.Ether(1)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.TxsByAddress(a[0])); got != 1 {
		t.Errorf("self transfer indexed %d times", got)
	}
	if bal := c.BalanceOf(a[0]); bal.Cmp(ethtypes.Ether(100)) != 0 {
		t.Errorf("self transfer changed balance: %s", bal)
	}
}

func TestUniqueTxHashes(t *testing.T) {
	c, a := newFunded(t, "alice", "bob")
	seen := map[ethtypes.Hash]bool{}
	for i := 0; i < 100; i++ {
		rcpt, err := c.Transfer(genesis+int64(12*(i+1)), a[0], a[1], ethtypes.NewWei(1))
		if err != nil {
			t.Fatal(err)
		}
		if seen[rcpt.Tx.Hash] {
			t.Fatalf("duplicate tx hash at i=%d", i)
		}
		seen[rcpt.Tx.Hash] = true
	}
}

func TestAddressesWithActivitySortedAndComplete(t *testing.T) {
	c, a := newFunded(t, "z-addr", "a-addr", "m-addr")
	c.Transfer(genesis+12, a[0], a[1], ethtypes.Ether(1))
	c.Transfer(genesis+24, a[2], a[0], ethtypes.Ether(1))
	got := c.AddressesWithActivity()
	if len(got) != 3 {
		t.Fatalf("got %d addresses", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !lessAddr(got[i-1], got[i]) {
			t.Error("addresses not sorted")
		}
	}
}

func lessAddr(a, b ethtypes.Address) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

func TestQuickBalanceConservation(t *testing.T) {
	f := func(transfers []uint8) bool {
		c, _ := func() (*Chain, []ethtypes.Address) {
			c := New(genesis)
			for _, l := range []string{"p", "q", "r"} {
				c.Mint(ethtypes.DeriveAddress(l), ethtypes.Ether(10))
			}
			return c, nil
		}()
		addrs := []ethtypes.Address{
			ethtypes.DeriveAddress("p"), ethtypes.DeriveAddress("q"), ethtypes.DeriveAddress("r"),
		}
		ts := int64(genesis)
		for _, b := range transfers {
			from := addrs[int(b)%3]
			to := addrs[int(b/3)%3]
			ts += int64(b%7) * 12
			c.Transfer(ts, from, to, ethtypes.EtherFloat(float64(b%5))) // may fail; fine
		}
		total := ethtypes.Wei{}
		for _, a := range addrs {
			total = total.Add(c.BalanceOf(a))
		}
		return total.Cmp(ethtypes.Ether(30)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
