package chain

import "ensdropcatch/internal/ethtypes"

// LogFilter selects event logs, mirroring eth_getLogs semantics: all
// criteria are conjunctive, zero values match everything.
type LogFilter struct {
	// FromBlock / ToBlock bound the block range inclusively; ToBlock 0
	// means "latest".
	FromBlock, ToBlock uint64
	// Address restricts to logs emitted by this contract.
	Address ethtypes.Address
	// Events restricts to these decoded event names.
	Events []string
	// Topic0 restricts to logs whose first topic equals this hash.
	Topic0 ethtypes.Hash
}

func (f *LogFilter) matches(l *Log) bool {
	if f.FromBlock != 0 && l.BlockNumber < f.FromBlock {
		return false
	}
	if f.ToBlock != 0 && l.BlockNumber > f.ToBlock {
		return false
	}
	if !f.Address.IsZero() && l.Address != f.Address {
		return false
	}
	if !f.Topic0.IsZero() && (len(l.Topics) == 0 || l.Topics[0] != f.Topic0) {
		return false
	}
	if len(f.Events) > 0 {
		ok := false
		for _, e := range f.Events {
			if l.Event == e {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// FilterLogs returns the logs matching the filter in chain order (copy).
// Indexers use it to fold specific event streams without walking unrelated
// logs, and incremental indexers pass a FromBlock watermark.
func (c *Chain) FilterLogs(f LogFilter) []*Log {
	c.mu.RLock()
	defer c.mu.RUnlock()
	src := c.logs
	if !f.Address.IsZero() {
		src = c.logsByAddr[f.Address]
	}
	var out []*Log
	for _, l := range src {
		if f.matches(l) {
			out = append(out, l)
		}
	}
	return out
}

// HeadBlock returns the block number of the most recent transaction.
func (c *Chain) HeadBlock() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blockNumberAtLocked(c.headTime)
}
