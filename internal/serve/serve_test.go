package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/world"
)

var testWorld = sync.OnceValue(func() *world.Result {
	cfg := world.DefaultConfig(300)
	cfg.Seed = 3
	res, err := world.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return res
})

func newTestStack(t *testing.T, cfg Config) *Stack {
	t.Helper()
	cfg.Seed = 3
	return New(testWorld(), nil, cfg)
}

const subgraphQuery = `{"query":"{ registrationEvents(first: 10) { id type labelName } }"}`

func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestStackRoutes drives each route through the fully assembled stack.
func TestStackRoutes(t *testing.T) {
	st := newTestStack(t, Config{})
	if rec := post(st.Handler, "/subgraph", subgraphQuery); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"data"`) {
		t.Errorf("subgraph: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(st.Handler, "/etherscan/labels"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "coinbase") {
		t.Errorf("etherscan labels: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(st.Handler, "/opensea/events?limit=5"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "asset_events") {
		t.Errorf("opensea: %d %q", rec.Code, rec.Body.String())
	}
	if rec := post(st.Handler, "/rpc", `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber"}`); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "result") {
		t.Errorf("rpc: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(st.Handler, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz: %d", rec.Code)
	}
	if rec := get(st.Handler, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("metrics: %d", rec.Code)
	}
}

// TestStackCacheServesIdenticalPages: a repeated query must hit the
// cache and return byte-identical pages with a validator.
func TestStackCacheServesIdenticalPages(t *testing.T) {
	st := newTestStack(t, Config{})
	first := post(st.Handler, "/subgraph", subgraphQuery)
	second := post(st.Handler, "/subgraph", subgraphQuery)
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached page differs from rendered page")
	}
	if second.Header().Get("X-Cache") != "HIT" {
		t.Errorf("X-Cache = %q, want HIT", second.Header().Get("X-Cache"))
	}
	if st.Cache.Len() == 0 {
		t.Error("cache empty after cacheable traffic")
	}

	etag := second.Header().Get("ETag")
	req := httptest.NewRequest(http.MethodPost, "/subgraph", strings.NewReader(subgraphQuery))
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	st.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Errorf("If-None-Match: %d, want 304", rec.Code)
	}
}

// TestStackCacheDisabled: CacheDisabled must leave no cache in the path.
func TestStackCacheDisabled(t *testing.T) {
	st := newTestStack(t, Config{CacheDisabled: true})
	if st.Cache != nil {
		t.Fatal("CacheDisabled built a cache")
	}
	rec := post(st.Handler, "/subgraph", subgraphQuery)
	if rec.Header().Get("X-Cache") != "" {
		t.Error("disabled cache stamped X-Cache")
	}
	if rec.Code != http.StatusOK {
		t.Errorf("subgraph: %d", rec.Code)
	}
}

// TestStackEtherscanRateLimitNotCached: the etherscan NOTOK rate-limit
// answer rides on HTTP 200 but must never be served from cache —
// otherwise one exhausted bucket poisons the URL forever. Distinct
// URLs force cache misses so each request really hits the bucket.
func TestStackEtherscanRateLimitNotCached(t *testing.T) {
	st := newTestStack(t, Config{EtherscanRate: 2})
	path := func(i int) string {
		return fmt.Sprintf("/etherscan/api?module=account&action=balance&address=0x0000000000000000000000000000000000000001&apikey=k&i=%d", i)
	}
	limited := -1
	for i := 0; i < 10; i++ {
		rec := get(st.Handler, path(i))
		if strings.Contains(rec.Body.String(), "Max rate limit reached") {
			limited = i
			if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "no-store") {
				t.Fatalf("rate-limit answer missing no-store: %q", cc)
			}
			break
		}
	}
	if limited < 0 {
		t.Fatal("never hit the rate limit")
	}
	// The bucket refills at 2/s; after a pause the same URL must answer
	// OK again, which it cannot if the NOTOK body was cached.
	time.Sleep(600 * time.Millisecond)
	rec := get(st.Handler, path(limited))
	if strings.Contains(rec.Body.String(), "Max rate limit reached") {
		t.Errorf("refilled bucket still rate-limited: %q (cached NOTOK?)", rec.Body.String())
	}
}

// TestStackShedsCountOnCachedRoute: overload sheds must keep working
// with the cache in the path — a hit still consumes a gate slot.
func TestStackShedsCountOnCachedRoute(t *testing.T) {
	st := newTestStack(t, Config{MaxInflight: 1, QueueDepth: -1, QueueWait: time.Millisecond})
	// Prime the cache.
	if rec := post(st.Handler, "/subgraph", subgraphQuery); rec.Code != http.StatusOK {
		t.Fatalf("prime: %d", rec.Code)
	}
	// Saturate the single slot with a request parked inside the gate.
	release := make(chan struct{})
	inside := make(chan struct{})
	st.Mux.Handle("/slow", st.Gate.Wrap("/slow", overload.Data, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inside)
		<-release
	})))
	go get(st.Handler, "/slow")
	<-inside
	defer close(release)

	rec := post(st.Handler, "/subgraph", subgraphQuery)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("cached route under saturation: %d, want 503 shed", rec.Code)
	}
	if st.Gate.ShedCount() == 0 {
		t.Error("shed not counted with cache in the path")
	}
}

func TestHealthzJSON(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 3,
		Store: trace.NewStore(trace.StoreConfig{Capacity: 16, Seed: 3})})
	// A private registry isolates this stack's request counts from the
	// other tests sharing the process-global obs.Default.
	st := newTestStack(t, Config{Tracer: tracer, Registry: obs.NewRegistry()})
	summary := testWorld().Summarize()

	// Traffic first, so route latency sections have observations.
	for i := 0; i < 5; i++ {
		post(st.Handler, "/subgraph", subgraphQuery)
	}
	rec := get(st.Handler, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got healthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Status != "ok" {
		t.Errorf("status = %q, want ok", got.Status)
	}
	if got.Seed != 3 {
		t.Errorf("seed = %d, want 3", got.Seed)
	}
	if got.Domains != summary.Domains || got.Domains == 0 {
		t.Errorf("domains = %d, want %d (nonzero)", got.Domains, summary.Domains)
	}
	if got.Index.RegistrationEvents != st.Store.Len(subgraph.ColEvents) || got.Index.RegistrationEvents == 0 {
		t.Errorf("index events = %d, want %d (nonzero)", got.Index.RegistrationEvents, st.Store.Len(subgraph.ColEvents))
	}
	if !got.Trace.Enabled || got.Trace.Capacity != 16 {
		t.Errorf("trace block: %+v", got.Trace)
	}
	if !got.Cache.Enabled || got.Cache.Entries == 0 {
		t.Errorf("cache block: %+v, want enabled with entries", got.Cache)
	}
	var sub *routeHealth
	for i := range got.Routes {
		if got.Routes[i].Route == "/subgraph" {
			sub = &got.Routes[i]
		}
	}
	if sub == nil {
		t.Fatalf("no /subgraph route section in %+v", got.Routes)
	}
	if sub.Requests != 5 {
		t.Errorf("subgraph requests = %d, want 5", sub.Requests)
	}
	if sub.P99Ms < sub.P50Ms || sub.P999Ms < sub.P99Ms {
		t.Errorf("quantiles not monotonic: %+v", *sub)
	}
}

// TestHealthzNilTracer: tracing disabled must still produce a valid
// health body, with the trace block zeroed out.
func TestHealthzNilTracer(t *testing.T) {
	st := newTestStack(t, Config{CacheDisabled: true})
	rec := get(st.Handler, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got healthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if got.Trace.Enabled || got.Trace.Capacity != 0 || got.Trace.Stored != 0 {
		t.Errorf("disabled tracing leaked state: %+v", got.Trace)
	}
	if got.Cache.Enabled || got.Cache.Entries != 0 {
		t.Errorf("disabled cache leaked state: %+v", got.Cache)
	}
}

// TestStackQuotaDeniesThroughCache: per-client quotas sit outside the
// cache, so even all-hit traffic is throttled.
func TestStackQuotaDeniesThroughCache(t *testing.T) {
	st := newTestStack(t, Config{QuotaRate: 1, QuotaBurst: 2})
	denied := false
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/subgraph", strings.NewReader(subgraphQuery))
		req.Header.Set("X-Client-ID", "c1")
		st.Handler.ServeHTTP(rec, req)
		if rec.Code == http.StatusTooManyRequests {
			denied = true
			break
		}
	}
	if !denied {
		t.Error("quota never denied cache-hit traffic")
	}
	if st.Quotas.Denied() == 0 {
		t.Error("quota denial not counted")
	}
}

// TestStackChaosFaultsNotCached: with an aggressive fault rate, cached
// pages must stay clean — a fault answer is never stored, so a later
// clean pass serves the true page.
func TestStackChaosFaultsNotCached(t *testing.T) {
	st := newTestStack(t, Config{ChaosRate: 0.5, ChaosSeed: 7})
	// The injector simulates connection resets by panicking with
	// http.ErrAbortHandler; a real server recovers that, so the direct
	// ServeHTTP drive must too.
	postRecovering := func() (rec *httptest.ResponseRecorder) {
		defer func() {
			if p := recover(); p != nil && p != http.ErrAbortHandler {
				panic(p)
			}
		}()
		return post(st.Handler, "/subgraph", subgraphQuery)
	}
	want := ""
	for i := 0; i < 40; i++ {
		rec := postRecovering()
		if rec == nil || rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"data"`) {
			continue // injected fault
		}
		if want == "" {
			want = rec.Body.String()
			continue
		}
		if rec.Body.String() != want {
			t.Fatalf("clean responses diverged under chaos:\n%s\nvs\n%s",
				truncated(rec.Body.String()), truncated(want))
		}
	}
	if want == "" {
		t.Fatal("no clean response in 40 attempts")
	}
}

func truncated(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}

// TestStackDeterministicAcrossInstances: two stacks over the same seed
// serve byte-identical data pages.
func TestStackDeterministicAcrossInstances(t *testing.T) {
	a := newTestStack(t, Config{})
	b := newTestStack(t, Config{CacheDisabled: true})
	paths := []struct{ method, path, body string }{
		{http.MethodPost, "/subgraph", subgraphQuery},
		{http.MethodGet, "/opensea/events?limit=20", ""},
		{http.MethodPost, "/rpc", `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber"}`},
	}
	for _, p := range paths {
		var recs [2]*httptest.ResponseRecorder
		for i, st := range []*Stack{a, b} {
			rec := httptest.NewRecorder()
			var req *http.Request
			if p.method == http.MethodPost {
				req = httptest.NewRequest(p.method, p.path, strings.NewReader(p.body))
			} else {
				req = httptest.NewRequest(p.method, p.path, nil)
			}
			st.Handler.ServeHTTP(rec, req)
			recs[i] = rec
		}
		if recs[0].Body.String() != recs[1].Body.String() {
			t.Errorf("%s %s: cached and uncached stacks served different bytes", p.method, p.path)
		}
	}
}

// TestStackConcurrentCachedTraffic hammers a cached route from many
// goroutines; every answer must be the same bytes (race detector run).
func TestStackConcurrentCachedTraffic(t *testing.T) {
	st := newTestStack(t, Config{})
	want := post(st.Handler, "/subgraph", subgraphQuery).Body.String()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := post(st.Handler, "/subgraph", subgraphQuery)
				if rec.Body.String() != want {
					select {
					case errs <- fmt.Sprintf("diverged at iter %d", i):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
