package serve

import (
	"net/http"
	"time"

	"ensdropcatch/internal/httpjson"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// healthStatus is the /healthz response body: enough for a load
// balancer to gate on, for an operator to see what world this instance
// is serving without grepping logs, and for the soak and load
// harnesses to assert on overload, cache, and latency state without
// scraping /metrics.
type healthStatus struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Seed          int64          `json:"seed"`
	Domains       int            `json:"domains"`
	Subdomains    int            `json:"subdomains"`
	Transactions  int            `json:"transactions"`
	Index         indexHealth    `json:"index"`
	Overload      overloadHealth `json:"overload"`
	Cache         cacheHealth    `json:"cache"`
	Trace         traceHealth    `json:"trace"`
	Routes        []routeHealth  `json:"routes"`
}

// indexHealth reports the subgraph index sizes with a fixed shape (one
// field per collection) instead of a map, so the response marshals
// without per-request map sorting and consumers get a stable contract.
type indexHealth struct {
	Domains            int `json:"domains"`
	RegistrationEvents int `json:"registrationEvents"`
	Registrations      int `json:"registrations"`
	Subdomains         int `json:"subdomains"`
}

// overloadHealth snapshots the admission gate and quota set.
type overloadHealth struct {
	Inflight     int    `json:"inflight"`
	Queued       int    `json:"queued"`
	Sheds        uint64 `json:"sheds"`
	QuotaDenied  uint64 `json:"quota_denied"`
	QuotaClients int    `json:"quota_clients"`
}

// cacheHealth snapshots the page cache; Enabled false zeroes the rest.
type cacheHealth struct {
	Enabled bool `json:"enabled"`
	Entries int  `json:"entries"`
}

// traceHealth snapshots the tail-sampled trace store; all zeros when
// tracing is disabled.
type traceHealth struct {
	Enabled  bool   `json:"enabled"`
	Stored   int    `json:"stored"`
	Capacity int    `json:"capacity"`
	Dropped  uint64 `json:"dropped"`
	Evicted  uint64 `json:"evicted"`
}

// routeHealth reports one route's served-latency distribution,
// estimated from the metrics histogram buckets.
type routeHealth struct {
	Route    string  `json:"route"`
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
}

// newHealthHandler serves liveness as JSON: uptime, the generated
// world's seed and headline counts, the subgraph index sizes, live
// overload-gate / cache / trace-store occupancy, and per-route latency
// quantiles (p50/p99/p999, interpolated from the histogram buckets).
func newHealthHandler(start time.Time, seed int64, summary world.Summary, st *Stack) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		status := healthStatus{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
			Seed:          seed,
			Domains:       summary.Domains,
			Subdomains:    summary.Subdomains,
			Transactions:  summary.Transactions,
			Index: indexHealth{
				Domains:            st.Store.Len(subgraph.ColDomains),
				RegistrationEvents: st.Store.Len(subgraph.ColEvents),
				Registrations:      st.Store.Len(subgraph.ColRegistrations),
				Subdomains:         st.Store.Len(subgraph.ColSubdomains),
			},
			Overload: overloadHealth{
				Inflight:     st.Gate.Inflight(),
				Queued:       st.Gate.Queued(),
				Sheds:        st.Gate.ShedCount(),
				QuotaDenied:  st.Quotas.Denied(),
				QuotaClients: st.Quotas.Clients(),
			},
			Trace: traceHealth{
				Enabled:  st.Tracer != nil,
				Stored:   st.Tracer.Store().Len(),
				Capacity: st.Tracer.Store().Capacity(),
				Dropped:  st.Tracer.Store().Dropped(),
				Evicted:  st.Tracer.Store().Evicted(),
			},
		}
		if st.Cache != nil {
			status.Cache = cacheHealth{Enabled: true, Entries: st.Cache.Len()}
		}
		for _, route := range st.Metrics.Routes() {
			h := st.Metrics.RouteLatency(route)
			status.Routes = append(status.Routes, routeHealth{
				Route:    route,
				Requests: h.Count(),
				P50Ms:    h.Quantile(0.5) * 1e3,
				P99Ms:    h.Quantile(0.99) * 1e3,
				P999Ms:   h.Quantile(0.999) * 1e3,
			})
		}
		// A failed response write means the client is gone; nothing to repair.
		_ = httpjson.Write(w, http.StatusOK, status)
	})
}
