// Package serve assembles the ensworld HTTP stack — routes, metrics,
// overload protection, chaos injection, response caching, tracing —
// from a generated world. Extracting the wiring from the binary lets
// the load generator's self-hosted mode, the e2e tests, and the server
// itself run the exact same stack, so a latency number measured in one
// place means the same thing everywhere.
//
// Middleware order, outermost first:
//
//	trace.Middleware        one server span per request, tail-sampled
//	obs.HTTPMetrics         per-route counts + latency histograms
//	overload.Deadline       per-route budget, shrinkable by the client
//	overload.Quotas         per-client token buckets (cheap rejection)
//	overload.Gate           bounded concurrency + shed queue
//	chaos injector          seeded fault drills (optional)
//	pagecache               rendered-response cache (optional)
//	handler                 subgraph / etherscan / opensea / rpc
//
// The cache sits innermost on purpose: a cache hit still consumes a
// gate slot (sheds stay honest under overload), still burns quota, and
// still rolls the chaos dice — and a chaos fault can never be written
// into the cache.
package serve

import (
	"log/slog"
	"net/http"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethrpc"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/overload"
	"ensdropcatch/internal/pagecache"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/world"
)

// Config tunes the stack. Zero values take the server defaults noted
// on each field.
type Config struct {
	// Logger defaults to a discard logger.
	Logger *slog.Logger
	// Namespace prefixes the HTTP metric names; default "ensworld".
	Namespace string
	// Registry receives the HTTP metrics and the /metrics exposition;
	// nil uses obs.Default. Tests give each stack its own registry so
	// request counts don't bleed across instances.
	Registry *obs.Registry
	// Seed is reported on /healthz as the world's generation seed.
	Seed int64
	// EtherscanRate is requests/second/key on /etherscan/api (0 = the
	// etherscan package default).
	EtherscanRate int
	// ChaosRate enables the fault injector on the data routes when > 0.
	ChaosRate float64
	// ChaosSeed seeds the fault schedule.
	ChaosSeed int64
	// Chaos, when set, wraps the data routes in a caller-supplied fault
	// layer — typically (*chaos.Campaign).Wrap for phased campaigns. It
	// takes precedence over ChaosRate. The wrap sits between the page
	// cache and the overload gate, same as the rate-based injector, so
	// injected faults consume gate slots but never poison the cache.
	Chaos func(http.Handler) http.Handler
	// MaxInflight bounds concurrently served data-route requests
	// (0 = 64).
	MaxInflight int
	// QueueDepth bounds the shed queue (0 = 128).
	QueueDepth int
	// QueueWait bounds time spent queued (0 = 2s).
	QueueWait time.Duration
	// QuotaRate is per-client requests/second keyed by X-Client-ID
	// (0 = quotas off).
	QuotaRate float64
	// QuotaBurst is the per-client burst (0 = max(QuotaRate, 1)).
	QuotaBurst float64
	// RouteTimeout is the default data-route deadline (0 = 30s).
	RouteTimeout time.Duration
	// CacheDisabled turns the page cache off; by default data routes
	// are cached.
	CacheDisabled bool
	// CacheEntries bounds the page cache (0 = pagecache default).
	CacheEntries int
	// CacheMaxBody bounds cacheable body size (0 = pagecache default).
	CacheMaxBody int
	// Tracer, when non-nil, traces every request and serves the store
	// on /debug/traces.
	Tracer *trace.Tracer
}

// Stack is an assembled server: Handler is ready for http.Server, and
// the components are exposed for health checks and tests.
type Stack struct {
	Handler http.Handler
	Mux     *http.ServeMux
	Gate    *overload.Gate
	Quotas  *overload.Quotas
	Cache   *pagecache.Cache // nil when disabled
	Metrics *obs.HTTPMetrics
	Store   *subgraph.Store
	Tracer  *trace.Tracer
}

// New wires the full route table and middleware stack for a generated
// world. store may be nil, in which case the subgraph index is built
// here.
func New(res *world.Result, store *subgraph.Store, cfg Config) *Stack {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Namespace == "" {
		cfg.Namespace = "ensworld"
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 64
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 128
	}
	if cfg.QueueWait == 0 {
		cfg.QueueWait = 2 * time.Second
	}
	if cfg.RouteTimeout == 0 {
		cfg.RouteTimeout = 30 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if store == nil {
		store = subgraph.BuildIndex(res.Chain)
	}

	st := &Stack{
		Mux:     http.NewServeMux(),
		Gate:    overload.NewGate(overload.GateConfig{MaxInflight: cfg.MaxInflight, QueueDepth: cfg.QueueDepth, MaxWait: cfg.QueueWait}),
		Quotas:  overload.NewQuotas(overload.QuotaConfig{Rate: cfg.QuotaRate, Burst: cfg.QuotaBurst}),
		Metrics: obs.NewHTTPMetrics(cfg.Registry, cfg.Namespace),
		Store:   store,
		Tracer:  cfg.Tracer,
	}
	if !cfg.CacheDisabled {
		st.Cache = pagecache.New(pagecache.Config{MaxEntries: cfg.CacheEntries, MaxBody: cfg.CacheMaxBody})
	}

	faulty := func(h http.Handler) http.Handler { return h }
	switch {
	case cfg.Chaos != nil:
		faulty = cfg.Chaos
		logger.Info("chaos campaign enabled")
	case cfg.ChaosRate > 0:
		inj := chaos.New(chaos.Config{Seed: cfg.ChaosSeed, Rate: cfg.ChaosRate})
		faulty = inj.Wrap
		logger.Info("chaos enabled", "rate", cfg.ChaosRate, "seed", cfg.ChaosSeed)
	}
	handle := func(route string, h http.Handler) {
		st.Mux.Handle(route, st.Metrics.Wrap(route, h))
	}
	handleData := func(route string, h http.Handler) {
		if st.Cache != nil {
			h = st.Cache.Wrap(route, h)
		}
		h = faulty(h)
		h = st.Gate.Wrap(route, overload.Data, h)
		h = st.Quotas.Wrap(route, h)
		h = overload.Deadline(cfg.RouteTimeout, cfg.RouteTimeout, h)
		handle(route, h)
	}

	handleData("/subgraph", subgraph.NewServer(store, logger))
	handleData("/etherscan/", http.StripPrefix("/etherscan",
		etherscan.NewServer(res.Chain, dataset.LabelsFromWorld(res), cfg.EtherscanRate, logger)))
	handleData("/opensea/", http.StripPrefix("/opensea", opensea.NewServer(res.OpenSea)))
	handleData("/rpc", ethrpc.NewServer(res.Chain))
	handle("/healthz", newHealthHandler(time.Now(), cfg.Seed, res.Summarize(), st))
	obs.RegisterDebug(st.Mux, cfg.Registry)
	if cfg.Tracer != nil {
		th := trace.Handler(cfg.Tracer.Store())
		st.Mux.Handle("/debug/traces", th)
		st.Mux.Handle("/debug/traces/", th)
	}
	st.Handler = trace.Middleware(cfg.Tracer, st.Mux)
	return st
}
