package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ensdropcatch/internal/obs"
)

// discardWriter keeps recorder bookkeeping out of the alloc counts.
type discardWriter struct {
	h    http.Header
	code int
}

func (d *discardWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header, 8)
	}
	return d.h
}
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(code int)        { d.code = code }

// allocRoutes are one representative request per data route. The
// budgets are allocations per request through the WHOLE stack — trace
// middleware, metrics, deadline, quotas, gate, cache, handler — so a
// regression anywhere on the serve path trips them. Values are ~2x the
// measured steady state to absorb map rehashes and pool misses, and the
// subgraph miss budget additionally enforces the PR acceptance floor:
// at most half the pre-optimization 2562 allocs/request.
var allocRoutes = []struct {
	name, method, path, body string
	hitBudget, missBudget    float64
}{
	{name: "subgraph", method: http.MethodPost, path: "/subgraph",
		body:      `{"query": "{ registrationEvents(first: 100) { id type label labelName registrant expiryDate costWei timestamp blockNumber txHash } }"}`,
		hitBudget: 64, missBudget: 350}, // measured: 33 hit, 174 miss (was 2562/req before pooling)
	{name: "etherscan", method: http.MethodGet,
		path:      "/etherscan/api?module=account&action=txlist&address=0x1&page=1&offset=100&apikey=t",
		hitBudget: 64, missBudget: 100}, // measured: 30 hit, 38 miss
	{name: "opensea", method: http.MethodGet, path: "/opensea/events?limit=50",
		hitBudget: 64, missBudget: 80}, // measured: 30 hit, 32 miss
	{name: "rpc", method: http.MethodPost, path: "/rpc",
		body:      `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`,
		hitBudget: 64, missBudget: 100}, // measured: 32 hit, 42 miss
}

func fireOnce(h http.Handler, method, path, body string) int {
	var rd *strings.Reader
	var req *http.Request
	if body != "" {
		rd = strings.NewReader(body)
		req = httptest.NewRequest(method, path, rd)
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	w := &discardWriter{}
	h.ServeHTTP(w, req)
	return w.code
}

// TestRouteAllocBudgets pins the per-request allocation cost of every
// data route on both sides of the page cache. The miss numbers come
// from a cache-disabled stack (every request renders), the hit numbers
// from a warmed cached stack (every request serves stored bytes).
func TestRouteAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	res := testWorld()
	cached := New(res, nil, Config{Registry: obs.NewRegistry()})
	uncached := New(res, nil, Config{Registry: obs.NewRegistry(), CacheDisabled: true})

	for _, rt := range allocRoutes {
		t.Run(rt.name, func(t *testing.T) {
			// Warm both stacks: fills the page cache, grows metric maps,
			// primes encoder pools.
			for i := 0; i < 3; i++ {
				if code := fireOnce(cached.Handler, rt.method, rt.path, rt.body); code != http.StatusOK && code != 0 {
					t.Fatalf("warm cached: status %d", code)
				}
				if code := fireOnce(uncached.Handler, rt.method, rt.path, rt.body); code != http.StatusOK && code != 0 {
					t.Fatalf("warm uncached: status %d", code)
				}
			}
			hit := testing.AllocsPerRun(50, func() {
				fireOnce(cached.Handler, rt.method, rt.path, rt.body)
			})
			miss := testing.AllocsPerRun(50, func() {
				fireOnce(uncached.Handler, rt.method, rt.path, rt.body)
			})
			t.Logf("%s: %.0f allocs/req on cache hit (budget %.0f), %.0f on miss (budget %.0f)",
				rt.name, hit, rt.hitBudget, miss, rt.missBudget)
			if hit > rt.hitBudget {
				t.Errorf("cache hit allocates %.0f/req, budget %.0f", hit, rt.hitBudget)
			}
			if miss > rt.missBudget {
				t.Errorf("cache miss allocates %.0f/req, budget %.0f", miss, rt.missBudget)
			}
		})
	}
}

// TestSubgraphHitCheaperThanMiss is the cache's reason to exist, stated
// as an allocation invariant: serving the stored page must be much
// cheaper than rendering it.
func TestSubgraphHitCheaperThanMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	res := testWorld()
	cached := New(res, nil, Config{Registry: obs.NewRegistry()})
	uncached := New(res, nil, Config{Registry: obs.NewRegistry(), CacheDisabled: true})
	rt := allocRoutes[0]
	for i := 0; i < 3; i++ {
		fireOnce(cached.Handler, rt.method, rt.path, rt.body)
		fireOnce(uncached.Handler, rt.method, rt.path, rt.body)
	}
	hit := testing.AllocsPerRun(50, func() { fireOnce(cached.Handler, rt.method, rt.path, rt.body) })
	miss := testing.AllocsPerRun(50, func() { fireOnce(uncached.Handler, rt.method, rt.path, rt.body) })
	if hit*2 > miss {
		t.Errorf("cache hit (%.0f allocs) not at least 2x cheaper than miss (%.0f)", hit, miss)
	}
}
