package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/trace"
)

// tracedStack builds a fully instrumented stack: tracing with a
// sampling store, metrics, gate, quotas off, cache on.
func tracedStack(t *testing.T) *Stack {
	t.Helper()
	tr := trace.New(trace.Config{
		Seed: 42,
		Store: trace.NewStore(trace.StoreConfig{
			Capacity:   256,
			SampleRate: 0.25,
			Seed:       42,
		}),
	})
	return New(testWorld(), nil, Config{Registry: obs.NewRegistry(), Tracer: tr})
}

// TestTracedStackDeterministicUnderConcurrency drives the same request
// set through two traced, cached stacks — one serially, one from 8
// goroutines — and requires byte-identical pages. Tracing, the page
// cache, and handler parallelism must all be invisible in the payload:
// the only acceptable difference between a quiet server and a loaded
// one is timing.
func TestTracedStackDeterministicUnderConcurrency(t *testing.T) {
	serial := tracedStack(t)
	loaded := tracedStack(t)

	type probe struct{ method, path, body string }
	var probes []probe
	for i := 0; i < 40; i++ {
		probes = append(probes,
			probe{http.MethodPost, "/subgraph",
				fmt.Sprintf(`{"query": "{ registrationEvents(first: %d) { id type labelName registrant costWei } }"}`, 10+i%5)},
			probe{http.MethodGet, fmt.Sprintf("/opensea/events?limit=%d", 10+i%7), ""},
			probe{http.MethodPost, "/rpc", `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`},
		)
	}

	fetch := func(st *Stack, p probe) string {
		var rec *httptest.ResponseRecorder
		if p.method == http.MethodPost {
			rec = post(st.Handler, p.path, p.body)
		} else {
			rec = get(st.Handler, p.path)
		}
		if rec.Code != http.StatusOK {
			t.Errorf("%s %s: status %d", p.method, p.path, rec.Code)
		}
		return rec.Body.String()
	}

	// Workers = 1: every probe, three times each so the second and third
	// passes are cache hits.
	want := make([]string, len(probes))
	for pass := 0; pass < 3; pass++ {
		for i, p := range probes {
			body := fetch(serial, p)
			if pass == 0 {
				want[i] = body
			} else if body != want[i] {
				t.Fatalf("serial stack unstable on %s %s (pass %d)", p.method, p.path, pass)
			}
		}
	}

	// Workers = 8: the same probes, every worker hammering the full set
	// concurrently against the loaded stack.
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for i, p := range probes {
					if body := fetch(loaded, p); body != want[i] {
						errs <- fmt.Sprintf("%s %s: concurrent body differs from serial", p.method, p.path)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
