package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ensdropcatch/internal/chaos"
	"ensdropcatch/internal/leakcheck"
	"ensdropcatch/internal/obs"
)

// newMatrixServer serves a stack over a real listener: abort faults
// must become dropped connections, which a recorder cannot model.
func newMatrixServer(t *testing.T, st *Stack) string {
	t.Helper()
	srv := httptest.NewServer(st.Handler)
	t.Cleanup(srv.Close)
	return srv.URL
}

// The fault×route matrix: every chaos fault against every data route,
// through the fully assembled stack (deadline, quotas, gate, chaos,
// cache, handler) over a real connection. The contract is that a fault
// is always either a well-formed HTTP answer or a dropped connection —
// never an escaped panic, a wedged handler, or a poisoned server: after
// each faulted request the same server must still answer /healthz.
func TestChaosFaultRouteMatrix(t *testing.T) {
	leakcheck.Check(t)

	routes := []struct {
		name, method, path, body string
	}{
		{"subgraph", http.MethodPost, "/subgraph", subgraphQuery},
		{"etherscan", http.MethodGet, "/etherscan/labels", ""},
		{"opensea", http.MethodGet, "/opensea/events?limit=5", ""},
		{"rpc", http.MethodPost, "/rpc", `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber"}`},
	}

	for _, fault := range chaos.AllFaults() {
		fault := fault
		t.Run(string(fault), func(t *testing.T) {
			// Rate 1 with a single-fault set: every data-route request
			// takes exactly this fault. Routed through the Config.Chaos
			// hook — the same seam campaigns use.
			inj := chaos.New(chaos.Config{
				Seed:   1,
				Rate:   1,
				Faults: []chaos.Fault{fault},
				Delay:  2 * time.Millisecond,
			})
			st := newTestStack(t, Config{
				Registry: obs.NewRegistry(),
				Chaos:    inj.Wrap,
				// Generous quotas so the matrix measures faults, not sheds.
				QuotaRate: 10000, QuotaBurst: 10000,
			})
			srv := newMatrixServer(t, st)
			hc := &http.Client{Timeout: 5 * time.Second}

			for _, rt := range routes {
				var body io.Reader
				if rt.body != "" {
					body = strings.NewReader(rt.body)
				}
				req, err := http.NewRequest(rt.method, srv+rt.path, body)
				if err != nil {
					t.Fatal(err)
				}
				if rt.body != "" {
					req.Header.Set("Content-Type", "application/json")
				}
				resp, err := hc.Do(req)
				var readErr error
				var got []byte
				if err == nil {
					got, readErr = io.ReadAll(resp.Body)
					resp.Body.Close()
				}

				switch fault {
				case chaos.FaultRateLimit:
					if err != nil || resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("%s/%s: want 429, got (%v, %v)", fault, rt.name, status(resp), err)
					} else if resp.Header.Get("Retry-After") == "" {
						t.Errorf("%s/%s: 429 without Retry-After", fault, rt.name)
					}
				case chaos.FaultServerError:
					if err != nil || resp.StatusCode != http.StatusInternalServerError {
						t.Errorf("%s/%s: want 500, got (%v, %v)", fault, rt.name, status(resp), err)
					}
				case chaos.FaultReset, chaos.FaultStall:
					if err == nil {
						t.Errorf("%s/%s: want a dropped connection, got %v with %d body bytes",
							fault, rt.name, status(resp), len(got))
					}
				case chaos.FaultSlowBody:
					if err != nil || resp.StatusCode != http.StatusOK || readErr != nil {
						t.Errorf("%s/%s: want a delayed 200, got (%v, %v, read %v)",
							fault, rt.name, status(resp), err, readErr)
					}
				case chaos.FaultTruncate:
					// Headers promise the full body, the wire carries half:
					// the failure must surface while reading, not pass as a
					// plausible short document.
					if err == nil && readErr == nil {
						t.Errorf("%s/%s: truncated body read cleanly (%d bytes)", fault, rt.name, len(got))
					}
				}

				// The server survived: a non-chaos route still answers.
				hresp, herr := hc.Get(srv + "/healthz")
				if herr != nil || hresp.StatusCode != http.StatusOK {
					t.Fatalf("%s/%s: server unhealthy after fault: (%v, %v)", fault, rt.name, status(hresp), herr)
				}
				io.Copy(io.Discard, hresp.Body)
				hresp.Body.Close()
			}
		})
	}
}

func status(resp *http.Response) string {
	if resp == nil {
		return "<no response>"
	}
	return resp.Status
}
