package dataset

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
)

func TestValidateCleanDataset(t *testing.T) {
	ds := sharedDataset(t)
	if err := ds.Validate(); err != nil {
		t.Errorf("generated dataset invalid: %v", err)
	}
}

func TestValidateAfterReload(t *testing.T) {
	ds := sharedDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("reloaded dataset invalid: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	a1 := ethtypes.DeriveAddress("val-a1")

	build := func(mutate func(*Dataset)) error {
		ds := New(0, 1000)
		lh := ens.LabelHash("valid")
		ds.Domains[lh] = &Domain{
			LabelHash: lh,
			Label:     "valid",
			Events: []Event{
				{Type: EvRegistered, Registrant: a1, Timestamp: 10, Expiry: 500},
			},
		}
		mutate(ds)
		ds.Reindex()
		return ds.Validate()
	}

	if err := build(func(*Dataset) {}); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Dataset)
		want   error
	}{
		{"empty", func(ds *Dataset) { ds.Domains = map[ethtypes.Hash]*Domain{} }, ErrNoDomains},
		{"window", func(ds *Dataset) { ds.End = ds.Start }, ErrBadWindow},
		{"orphan renewal", func(ds *Dataset) {
			lh := ens.LabelHash("orphan")
			ds.Domains[lh] = &Domain{LabelHash: lh, Label: "orphan",
				Events: []Event{{Type: EvRenewed, Timestamp: 20, Expiry: 600}}}
		}, ErrOrphanEvent},
		{"bad tx", func(ds *Dataset) {
			ds.Txs = append(ds.Txs, &Tx{})
		}, ErrBadTx},
	}
	for _, c := range cases {
		err := build(c.mutate)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}

	// Events out of order survive Reindex only if equal timestamps hide
	// regression; construct directly without Reindex-sorting by using
	// Validate on a hand-ordered copy.
	ds := New(0, 1000)
	lh := ens.LabelHash("unordered")
	ds.Domains[lh] = &Domain{LabelHash: lh, Label: "unordered",
		Events: []Event{
			{Type: EvRegistered, Registrant: a1, Timestamp: 100, Expiry: 900},
			{Type: EvRenewed, Timestamp: 50, Expiry: 950},
		}}
	if err := ds.Validate(); !errors.Is(err, ErrBadEventOrder) {
		t.Errorf("unordered events: %v", err)
	}

	// Registration with expiry before its own timestamp.
	ds2 := New(0, 1000)
	lh2 := ens.LabelHash("backwards")
	ds2.Domains[lh2] = &Domain{LabelHash: lh2, Label: "backwards",
		Events: []Event{{Type: EvRegistered, Registrant: a1, Timestamp: 500, Expiry: 100}}}
	if err := ds2.Validate(); err == nil {
		t.Error("backwards expiry accepted")
	}
}

// TestValidateDeterministicOrder seeds many violating domains and
// checks that the joined message lists them in sorted label-hash order
// and is byte-identical across calls — the truncation past 50
// violations means map-order iteration would not just reword the error
// but change which violations survive.
func TestValidateDeterministicOrder(t *testing.T) {
	ds := New(0, 1000)
	labels := []string{"zulu", "alpha", "mike", "kilo", "echo", "tango", "whiskey", "november"}
	for _, l := range labels {
		lh := ens.LabelHash(l)
		ds.Domains[lh] = &Domain{LabelHash: lh, Label: l,
			Events: []Event{{Type: EvRenewed, Timestamp: 20, Expiry: 600}}}
	}
	first := ds.Validate()
	if first == nil {
		t.Fatal("violations not detected")
	}
	for i := 0; i < 5; i++ {
		if err := ds.Validate(); err.Error() != first.Error() {
			t.Fatalf("Validate message changed between calls:\n%s\nvs\n%s", first, err)
		}
	}

	// The per-domain messages must appear in sorted label-hash order.
	hashes := make([]ethtypes.Hash, 0, len(labels))
	for _, l := range labels {
		hashes = append(hashes, ens.LabelHash(l))
	}
	sort.Slice(hashes, func(i, j int) bool { return bytes.Compare(hashes[i][:], hashes[j][:]) < 0 })
	msg := first.Error()
	pos := -1
	for _, lh := range hashes {
		name := ds.Domains[lh].Name()
		at := strings.Index(msg, name)
		if at < 0 {
			t.Fatalf("violation for %s missing from message:\n%s", name, msg)
		}
		if at < pos {
			t.Fatalf("violation for %s out of sorted order in message:\n%s", name, msg)
		}
		pos = at
	}
}

func TestValidateHTTPCrawledDataset(t *testing.T) {
	// The remote-assembled dataset must satisfy the same invariants.
	res := sharedWorld(t)
	ds, err := FromWorld(context.Background(), res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("FromWorld dataset invalid: %v", err)
	}
}
