package dataset

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/vfs"
	"ensdropcatch/internal/world"
)

// tinyDataset hand-builds a dataset small enough that exhaustive
// every-byte truncation sweeps over its persisted form stay fast, while
// still populating every section and every field class (empty labels,
// failed txs, equal timestamps, multi-event tokens, both custodial sets).
func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	mkHash := func(b byte) (h ethtypes.Hash) {
		for i := range h {
			h[i] = b
		}
		return h
	}
	mkAddr := func(b byte) (a ethtypes.Address) {
		for i := range a {
			a[i] = b
		}
		return a
	}

	ds := New(1_600_000_000, 1_700_000_000)
	d1 := &Domain{LabelHash: mkHash(0x11), Label: "gold", Events: []Event{
		{Type: EvRegistered, Registrant: mkAddr(0xa1), Expiry: 1_650_000_000,
			CostWei: "5000000000000000000", PremiumWei: "0", Timestamp: 1_610_000_000,
			Block: 100, TxHash: mkHash(0xf1)},
		{Type: EvRenewed, Registrant: mkAddr(0xa1), Expiry: 1_680_000_000,
			CostWei: "1000000000000000000", Timestamp: 1_620_000_000, Block: 200, TxHash: mkHash(0xf2)},
	}}
	d2 := &Domain{LabelHash: mkHash(0x22), Events: []Event{ // unrecoverable label
		{Type: EvTransferred, Timestamp: 1_615_000_000, Block: 150, TxHash: mkHash(0xf3)},
	}}
	ds.Domains[d1.LabelHash] = d1
	ds.Domains[d2.LabelHash] = d2

	ds.Txs = []*Tx{
		{Hash: mkHash(0x31), Block: 100, Timestamp: 1_610_000_000, From: mkAddr(0xa1),
			To: mkAddr(0xb1), ValueWei: "5000000000000000000", Method: "register"},
		{Hash: mkHash(0x32), Block: 101, Timestamp: 1_610_000_000, From: mkAddr(0xa2),
			To: mkAddr(0xb1), ValueWei: "0", Failed: true, Method: "register"},
		{Hash: mkHash(0x33), Block: 300, Timestamp: 1_630_000_000, From: mkAddr(0xa1),
			To: mkAddr(0xa2), ValueWei: "123", Method: ""},
	}
	ds.Subdomains = []Subdomain{
		{Node: mkHash(0x41), Parent: d1.LabelHash, Name: "pay.gold.eth", Owner: "0xowner1", Created: 1_611_000_000},
		{Node: mkHash(0x42), Parent: d1.LabelHash, Owner: "0xowner2", Created: 1_612_000_000},
	}
	tok := mkHash(0x51)
	ds.Market[tok] = []MarketEvent{
		{Kind: MarketListing, TokenID: tok, Seller: "alice", PriceUSD: 100.5, Timestamp: 1_640_000_000},
		{Kind: MarketSale, TokenID: tok, Seller: "alice", Buyer: "bob", PriceUSD: 99, Timestamp: 1_640_000_000},
	}
	ds.Coinbase[mkAddr(0xc1)] = true
	ds.OtherCustodial[mkAddr(0xc2)] = true
	ds.OtherCustodial[mkAddr(0xc3)] = true
	ds.Reindex()
	return ds
}

func TestParseFormat(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Format
		err  bool
	}{
		{"json", FormatJSON, false},
		{"binary", FormatBinary, false},
		{"msgpack", FormatJSON, true},
		{"", FormatJSON, true},
	} {
		got, err := ParseFormat(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseFormat(%q) = (%v, %v), want (%v, err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if FormatJSON.String() != "json" || FormatBinary.String() != "binary" {
		t.Error("Format.String mismatch")
	}
}

// The round-trip property at the heart of the format change: a dataset
// saved as JSON and the same dataset saved as binary must load to
// identical fingerprints — the binary format changes the bytes on disk,
// never the dataset.
func TestBinaryAndJSONLoadToIdenticalFingerprints(t *testing.T) {
	ds := sharedDataset(t)
	jsonDir, binDir := t.TempDir(), t.TempDir()
	if err := ds.Save(jsonDir); err != nil {
		t.Fatal(err)
	}
	if err := ds.Save(binDir, WithFormat(FormatBinary)); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(jsonDir)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Load(binDir)
	if err != nil {
		t.Fatal(err)
	}
	if fj, fb := fromJSON.Fingerprint(), fromBin.Fingerprint(); fj != fb {
		t.Fatalf("fingerprints diverge: json %x, binary %x", fj, fb)
	}
	if len(fromBin.Domains) != len(ds.Domains) || len(fromBin.Txs) != len(ds.Txs) ||
		len(fromBin.Subdomains) != len(ds.Subdomains) {
		t.Fatal("binary round trip lost rows")
	}
	// Indexes must work on the binary-loaded dataset too.
	for _, d := range ds.Domains {
		if d.Label != "" {
			if _, ok := fromBin.ByLabel(d.Label); !ok {
				t.Fatalf("ByLabel(%q) failed after binary reload", d.Label)
			}
			break
		}
	}
}

// SaveSnapshot round-trips through a single file path.
func TestSaveSnapshotRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	path := filepath.Join(t.TempDir(), "world.snap")
	if err := ds.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := loadViaJSON(t, ds)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != saved.Fingerprint() {
		t.Fatal("snapshot fingerprint diverges from JSON round trip")
	}
}

// loadViaJSON saves ds as JSON into a temp dir and loads it back,
// producing the canonical persisted-order dataset to compare against.
func loadViaJSON(t *testing.T, ds *Dataset) (*Dataset, error) {
	t.Helper()
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		return nil, err
	}
	return Load(dir)
}

// save→load→save must be byte-stable in both formats: loading and
// re-saving an already-canonical dataset reproduces every file exactly.
func TestSaveLoadSaveIsByteStable(t *testing.T) {
	for _, format := range []Format{FormatJSON, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			ds := sharedDataset(t)
			dir1, dir2 := t.TempDir(), t.TempDir()
			if err := ds.Save(dir1, WithFormat(format)); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(dir1)
			if err != nil {
				t.Fatal(err)
			}
			if err := loaded.Save(dir2, WithFormat(format)); err != nil {
				t.Fatal(err)
			}
			names1 := dirFileNames(t, dir1)
			if len(names1) == 0 {
				t.Fatal("no files saved")
			}
			for _, name := range names1 {
				b1, err := os.ReadFile(filepath.Join(dir1, name))
				if err != nil {
					t.Fatal(err)
				}
				b2, err := os.ReadFile(filepath.Join(dir2, name))
				if err != nil {
					t.Fatalf("second save missing %s: %v", name, err)
				}
				if string(b1) != string(b2) {
					t.Errorf("%s not byte-stable across save→load→save", name)
				}
			}
		})
	}
}

func dirFileNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// The binary contract from the spool tests, applied to the dataset
// snapshot: truncating the file at EVERY byte must fail Load — never
// silently shorten. The tiny dataset keeps the sweep exhaustive.
func TestBinaryTruncatedAtEveryByteFailsLoad(t *testing.T) {
	ds := tinyDataset(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.snap")
	if err := ds.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("untruncated snapshot failed to load: %v", err)
	}
	t.Logf("sweeping %d truncation points", len(full))
	cutPath := filepath.Join(dir, "cut.snap")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(cutPath)
		if err == nil {
			t.Fatalf("cut at byte %d of %d loaded without error", cut, len(full))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at byte %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

// The same contract sampled across a real-sized (900-domain world)
// binary file, striding with a prime so cuts land in every section and
// alignment class.
func TestBinaryTruncationStrideOnWorldDataset(t *testing.T) {
	ds := sharedDataset(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "world.snap")
	if err := ds.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, len(full) - 1, len(full) - len(binFooter), len(full) - len(binFooter) - 1}
	for cut := 7; cut < len(full); cut += 9973 {
		cuts = append(cuts, cut)
	}
	cutPath := filepath.Join(dir, "cut.snap")
	for _, cut := range cuts {
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(cutPath); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at byte %d of %d: err = %v, want ErrCorrupt", cut, len(full), err)
		}
	}
}

// Regression for the foreground bug: a JSONL section truncated at a line
// boundary parses cleanly line by line, and the old Load returned the
// shortened dataset without complaint. Now every section's row count is
// cross-checked against meta.json.
func TestTruncatedJSONLFailsLoad(t *testing.T) {
	for _, file := range []string{domainsFile, txsFile, subdomainFile, marketFile} {
		t.Run(file, func(t *testing.T) {
			ds := tinyDataset(t)
			dir := t.TempDir()
			if err := ds.Save(dir); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, file)
			full, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			trimmed := strings.TrimRight(string(full), "\n")
			i := strings.LastIndexByte(trimmed, '\n')
			if i < 0 {
				i = 0 // single-row section: drop the only line
			}
			// Clean line-boundary truncation — the crash footprint that
			// used to load silently.
			if err := os.WriteFile(path, full[:i], 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = Load(dir)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("line-boundary truncation: err = %v, want ErrCorrupt", err)
			}
			var cm *CountMismatchError
			if !errors.As(err, &cm) || cm.File != file {
				t.Fatalf("err = %v, want CountMismatchError for %s", err, file)
			}

			// Mid-line truncation must fail too (undecodable row).
			if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("mid-line truncation: err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// A crash between section writes and the meta.json commit leaves an old
// meta over a mix of generations; differing counts must be detected.
func TestMixedGenerationSectionsDetected(t *testing.T) {
	big := sharedDataset(t)
	small := tinyDataset(t)
	dir, dir2 := t.TempDir(), t.TempDir()
	if err := big.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := small.Save(dir2); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn save: one section from another generation under
	// the original meta.
	b, err := os.ReadFile(filepath.Join(dir2, txsFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, txsFile), b, 0o644); err != nil {
		t.Fatal(err)
	}
	var cm *CountMismatchError
	if _, err := Load(dir); !errors.As(err, &cm) {
		t.Fatalf("err = %v, want CountMismatchError", err)
	}
}

// Load must refuse meta versions newer than it understands rather than
// guess at their invariants.
func TestLoadRejectsNewerMetaVersion(t *testing.T) {
	ds := tinyDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, metaFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(b), `"formatVersion": 2`, `"formatVersion": 99`, 1)
	if mutated == string(b) {
		t.Fatal("meta.json does not carry formatVersion 2")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("newer meta version loaded without error")
	}
}

// Pre-version-2 metas (no subdomain/market counts) must still load — the
// JSON fallback covers datasets written before this change.
func TestLoadAcceptsLegacyMetaVersion(t *testing.T) {
	ds := tinyDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, metaFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := strings.Replace(string(b), `"formatVersion": 2`, `"formatVersion": 0`, 1)
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("legacy meta failed to load: %v", err)
	}
	if len(back.Domains) != len(ds.Domains) {
		t.Fatal("legacy load lost domains")
	}
}

// A directory holding both layouts loads the binary one.
func TestLoadPrefersBinaryInMixedDir(t *testing.T) {
	ds := tinyDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := ds.Save(dir, WithFormat(FormatBinary)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the JSON metadata; a successful load proves the binary
	// file was the one read.
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("mixed dir load failed: %v", err)
	}
}

// writeAtomic must leave the previous file intact when the writer fails,
// and never leave temp files behind on success.
func TestWriteAtomicPreservesOldContentOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")
	if err := os.WriteFile(path, []byte("previous generation"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encoder exploded")
	if err := writeAtomic(vfs.OS, path, false, func(vfs.File) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's failure", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "previous generation" {
		t.Fatalf("old content clobbered: %q, %v", b, err)
	}
	if names := dirFileNames(t, dir); len(names) != 1 {
		t.Fatalf("temp files left behind: %v", names)
	}
}

// TestPersistAcceptanceAtScale reruns the core persistence contract —
// binary save→load→save byte-stable, binary fingerprint equal to the
// JSON-loaded one — over a world of ENSPERSIST_DOMAINS domains. Skipped
// unless that variable is set: at the 100k acceptance scale this is a
// multi-minute run, driven explicitly (see Makefile bench-persist notes)
// rather than on every `go test`.
func TestPersistAcceptanceAtScale(t *testing.T) {
	n, err := strconv.Atoi(os.Getenv("ENSPERSIST_DOMAINS"))
	if err != nil || n <= 0 {
		t.Skip("set ENSPERSIST_DOMAINS (e.g. 100000) to run the at-scale acceptance check")
	}
	res, err := world.Generate(world.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := FromWorld(context.Background(), res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jsonDir, binDir, binDir2 := t.TempDir(), t.TempDir(), t.TempDir()
	if err := ds.Save(jsonDir); err != nil {
		t.Fatal(err)
	}
	if err := ds.Save(binDir, WithFormat(FormatBinary)); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(jsonDir)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Load(binDir)
	if err != nil {
		t.Fatal(err)
	}
	if fj, fb := fromJSON.Fingerprint(), fromBin.Fingerprint(); fj != fb {
		t.Fatalf("fingerprints diverge at %d domains: json %x, binary %x", n, fj, fb)
	}
	if err := fromBin.Save(binDir2, WithFormat(FormatBinary)); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(filepath.Join(binDir, binFile))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(binDir2, binFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("binary save→load→save not byte-stable at %d domains", n)
	}
	t.Logf("%d domains: %d txs, binary file %d bytes, byte-stable, fingerprints equal", n, len(ds.Txs), len(b1))
}

// Save with WithSync and both formats leaves only committed files — no
// .tmp residue — and the result loads.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	ds := tinyDataset(t)
	for _, format := range []Format{FormatJSON, FormatBinary} {
		dir := t.TempDir()
		if err := ds.Save(dir, WithFormat(format), WithSync()); err != nil {
			t.Fatal(err)
		}
		for _, name := range dirFileNames(t, dir) {
			if strings.HasSuffix(name, ".tmp") {
				t.Errorf("%s: temp file %s left behind", format, name)
			}
		}
		if _, err := Load(dir); err != nil {
			t.Fatalf("%s: synced save failed to load: %v", format, err)
		}
	}
}
