package dataset

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// crashFixture runs one clean resumable Build and hands back everything a
// crash test needs to damage and re-run it: the spool/checkpoint bytes,
// the final entry's boundaries, and the ground-truth transaction set.
type crashFixture struct {
	store     *subgraph.Store
	chainSrc  *ChainSource
	market    *MarketEventsSource
	opts      BuildOptions
	spool     []byte
	cp        []byte
	lastStart int    // byte offset where the final spool line begins
	lastAddr  string // address of the final spool entry
	wantTxs   map[ethtypes.Hash]bool
}

func newCrashFixture(t *testing.T) *crashFixture {
	t.Helper()
	res, err := world.Generate(world.DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	fx := &crashFixture{
		store:    subgraph.BuildIndex(res.Chain),
		chainSrc: &ChainSource{Chain: res.Chain, Labels: LabelsFromWorld(res)},
		market:   NewMarketEventsSource(res.OpenSea),
	}
	dir := t.TempDir()
	fx.opts = BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 2, ResumeDir: dir}
	ds, err := Build(context.Background(), &StoreSource{Store: fx.store}, fx.chainSrc, fx.market, fx.opts)
	if err != nil {
		t.Fatal(err)
	}
	fx.wantTxs = map[ethtypes.Hash]bool{}
	for _, tx := range ds.Txs {
		fx.wantTxs[tx.Hash] = true
	}

	fx.spool, err = os.ReadFile(filepath.Join(dir, spoolFile))
	if err != nil {
		t.Fatal(err)
	}
	fx.cp, err = os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	// Spool line order is irrelevant to recovery, and any entry can be the
	// one a crash tears. Move the shortest entry to the end so the
	// every-byte tear sweep stays fast while still crossing every boundary
	// class (inside the address, after it, mid-JSON, missing newline).
	lines := bytes.Split(bytes.TrimRight(fx.spool, "\n"), []byte("\n"))
	shortest := 0
	for i, l := range lines {
		if len(l) < len(lines[shortest]) {
			shortest = i
		}
	}
	last := append(append([]byte(nil), lines[shortest]...), '\n')
	lines = append(lines[:shortest], lines[shortest+1:]...)
	fx.spool = append(bytes.Join(lines, []byte("\n")), '\n')
	fx.lastStart = len(fx.spool)
	fx.spool = append(fx.spool, last...)
	var entry spoolEntry
	if err := json.Unmarshal(last, &entry); err != nil {
		t.Fatalf("decode final spool line: %v", err)
	}
	fx.lastAddr = entry.Address
	return fx
}

// restore writes damaged spool/checkpoint bytes into a fresh resume dir
// and returns BuildOptions pointed at it.
func (fx *crashFixture) restore(t *testing.T, spool, cp []byte) BuildOptions {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, spoolFile), spool, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), cp, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := fx.opts
	opts.ResumeDir = dir
	return opts
}

// cpWithout returns the checkpoint bytes with addr's line removed — the
// on-disk state after a crash that tore the spool write before Mark ran.
func (fx *crashFixture) cpWithout(t *testing.T, addr string) []byte {
	t.Helper()
	var out []byte
	found := false
	for _, line := range strings.Split(strings.TrimRight(string(fx.cp), "\n"), "\n") {
		if line == addr {
			found = true
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	if !found {
		t.Fatalf("address %s not in checkpoint", addr)
	}
	return out
}

func (fx *crashFixture) build(t *testing.T, opts BuildOptions) (*Dataset, error) {
	t.Helper()
	return Build(context.Background(), &StoreSource{Store: fx.store}, fx.chainSrc, fx.market, opts)
}

// TestResumeConvergesFromSpoolTornAtEveryByte simulates the real crash
// footprint — the final spool write torn at an arbitrary byte, Mark never
// reached — at every possible tear position in the last entry, and
// asserts the resumed Build recovers and converges to the clean dataset.
// On pre-fix code every one of these tears hard-failed the resume.
func TestResumeConvergesFromSpoolTornAtEveryByte(t *testing.T) {
	fx := newCrashFixture(t)
	cp := fx.cpWithout(t, fx.lastAddr)
	lastLen := len(fx.spool) - fx.lastStart
	t.Logf("final entry %s: %d bytes at offset %d", fx.lastAddr, lastLen, fx.lastStart)

	// cut == lastStart drops the entry cleanly; every larger cut leaves a
	// torn prefix (including len(spool)-1: the full line minus only its
	// newline, which still decodes but must be treated as torn).
	for cut := fx.lastStart; cut < len(fx.spool); cut++ {
		opts := fx.restore(t, fx.spool[:cut], cp)
		ds, err := fx.build(t, opts)
		if err != nil {
			t.Fatalf("cut at byte %d of %d: resume failed: %v", cut-fx.lastStart, lastLen, err)
		}
		if len(ds.Txs) != len(fx.wantTxs) {
			t.Fatalf("cut at byte %d: %d txs, want %d", cut-fx.lastStart, len(ds.Txs), len(fx.wantTxs))
		}
		for _, tx := range ds.Txs {
			if !fx.wantTxs[tx.Hash] {
				t.Fatalf("cut at byte %d: unexpected tx %s", cut-fx.lastStart, tx.Hash)
			}
		}
	}
}

// A torn final line whose address the checkpoint claims durable is not a
// crash tail — it is lost data, and resume must refuse to paper over it.
func TestResumeRefusesTornCheckpointedEntry(t *testing.T) {
	fx := newCrashFixture(t)
	// Tear the line but keep enough prefix that the address is readable.
	cut := fx.lastStart + len(`{"address":"`) + len(fx.lastAddr) + 2
	opts := fx.restore(t, fx.spool[:cut], fx.cp)
	_, err := fx.build(t, opts)
	if !errors.Is(err, ErrSpoolCorrupt) {
		t.Fatalf("err = %v, want ErrSpoolCorrupt", err)
	}
}

// Corruption on a non-final line can never be a mid-write crash tail;
// resume must hard-fail rather than silently drop checkpointed data.
func TestResumeRefusesCorruptMiddleLine(t *testing.T) {
	fx := newCrashFixture(t)
	spool := append([]byte(nil), fx.spool...)
	// Smash the first line's JSON without touching its newline.
	end := bytes.IndexByte(spool, '\n')
	if end < 8 {
		t.Fatal("first spool line implausibly short")
	}
	copy(spool[1:5], "!!!!")
	opts := fx.restore(t, spool, fx.cp)
	_, err := fx.build(t, opts)
	if !errors.Is(err, ErrSpoolCorrupt) {
		t.Fatalf("err = %v, want ErrSpoolCorrupt", err)
	}
}

func validLabelRow(typ string) subgraph.Entity {
	return subgraph.Entity{
		"label": "0x" + strings.Repeat("ab", 32),
		"type":  typ,
	}
}

// Regression: rows carrying both registrant and newOwner must attribute
// the event to the registrant. The old code unconditionally overwrote it
// with newOwner, misattributing who dropcatches.
func TestAddEventRowPrefersRegistrant(t *testing.T) {
	registrant := "0x" + strings.Repeat("11", 20)
	newOwner := "0x" + strings.Repeat("22", 20)

	ds := &Dataset{Domains: map[ethtypes.Hash]*Domain{}}
	row := validLabelRow(string(EvRegistered))
	row["registrant"] = registrant
	row["newOwner"] = newOwner
	if err := ds.addEventRow(row); err != nil {
		t.Fatal(err)
	}
	var got Event
	for _, d := range ds.Domains {
		got = d.Events[0]
	}
	want, _ := ethtypes.ParseAddress(registrant)
	if got.Registrant != want {
		t.Errorf("Registrant = %s, want registrant %s (newOwner won)", got.Registrant, registrant)
	}

	// newOwner still fills in when no registrant is named.
	ds = &Dataset{Domains: map[ethtypes.Hash]*Domain{}}
	row = validLabelRow(string(EvTransferred))
	row["newOwner"] = newOwner
	if err := ds.addEventRow(row); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds.Domains {
		got = d.Events[0]
	}
	want, _ = ethtypes.ParseAddress(newOwner)
	if got.Registrant != want {
		t.Errorf("Registrant = %s, want newOwner fallback %s", got.Registrant, newOwner)
	}
}

// Regression: unparseable numeric fields must surface as errors, not
// silent zeros that corrupt expiry and dropcatch detection.
func TestIntegerRejectsMalformedValues(t *testing.T) {
	cases := []struct {
		val     any
		want    int64
		wantErr bool
	}{
		{nil, 0, false},
		{"", 0, false},
		{"12345", 12345, false},
		{int64(7), 7, false},
		{float64(9), 9, false},
		{"not-a-number", 0, true},
		{"12x", 0, true},
		{[]string{"1"}, 0, true},
	}
	for _, c := range cases {
		row := subgraph.Entity{"expiryDate": c.val}
		got, err := integer(row, "expiryDate")
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("integer(%#v) = (%d, %v), want (%d, err=%v)", c.val, got, err, c.want, c.wantErr)
		}
	}

	// addEventRow propagates the failure.
	ds := &Dataset{Domains: map[ethtypes.Hash]*Domain{}}
	row := validLabelRow(string(EvRegistered))
	row["expiryDate"] = "garbage"
	if err := ds.addEventRow(row); err == nil {
		t.Error("addEventRow swallowed a malformed expiryDate")
	}
}

func TestFromRecordRejectsMalformedNumbers(t *testing.T) {
	rec := validTxRecord()
	rec.BlockNumber = "0xdeadbeef" // hex, not the decimal etherscan emits
	if _, err := fromRecord(&rec); err == nil {
		t.Error("bad block number accepted")
	}
	rec = validTxRecord()
	rec.TimeStamp = "yesterday"
	if _, err := fromRecord(&rec); err == nil {
		t.Error("bad timestamp accepted")
	}
	rec = validTxRecord()
	if _, err := fromRecord(&rec); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
}

func validTxRecord() etherscan.TxRecord {
	return etherscan.TxRecord{
		BlockNumber: "123456",
		TimeStamp:   "1600000000",
		Hash:        "0x" + strings.Repeat("cd", 32),
		From:        "0x" + strings.Repeat("33", 20),
		To:          "0x" + strings.Repeat("44", 20),
		Value:       "1000000000000000000",
		IsError:     "0",
	}
}
