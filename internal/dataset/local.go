package dataset

import (
	"context"
	"fmt"
	"strings"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// StoreSource adapts an in-process subgraph store to RegistrationSource,
// using the same id_gt cursor paging as the HTTP client so local and
// remote assembly follow identical code paths.
type StoreSource struct {
	Store    *subgraph.Store
	PageSize int
}

// PageAll implements RegistrationSource.
func (s *StoreSource) PageAll(ctx context.Context, collection string, fields []string) ([]subgraph.Entity, error) {
	pageSize := s.PageSize
	if pageSize <= 0 || pageSize > subgraph.MaxPageSize {
		pageSize = subgraph.MaxPageSize
	}
	var out []subgraph.Entity
	cursor := ""
	fieldList := strings.Join(fields, " ")
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		query := fmt.Sprintf(`{ %s(first: %d, orderBy: id, where: {id_gt: %q}) { id %s } }`,
			collection, pageSize, cursor, fieldList)
		q, err := subgraph.Parse(query)
		if err != nil {
			return nil, err
		}
		data, err := s.Store.ExecuteContext(ctx, q)
		if err != nil {
			return nil, err
		}
		rows := data[collection]
		for _, r := range rows {
			out = append(out, r.AsEntity())
		}
		if len(rows) < pageSize {
			return out, nil
		}
		cursor = rows[len(rows)-1].ID()
	}
}

// ChainSource adapts a chain directly to TxSource.
type ChainSource struct {
	Chain  *chain.Chain
	Labels etherscan.Labels
}

// TxList implements TxSource.
func (c *ChainSource) TxList(ctx context.Context, addr ethtypes.Address) ([]etherscan.TxRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	txs := c.Chain.TxsByAddress(addr)
	out := make([]etherscan.TxRecord, 0, len(txs))
	for _, tx := range txs {
		isErr := "0"
		if tx.Failed {
			isErr = "1"
		}
		out = append(out, etherscan.TxRecord{
			BlockNumber: fmt.Sprintf("%d", tx.BlockNumber),
			TimeStamp:   fmt.Sprintf("%d", tx.Timestamp),
			Hash:        tx.Hash.Hex(),
			From:        strings.ToLower(tx.From.Hex()),
			To:          strings.ToLower(tx.To.Hex()),
			Value:       tx.Value.BigInt().String(),
			IsError:     isErr,
			Method:      tx.Method,
		})
	}
	return out, nil
}

// FetchLabels implements TxSource.
func (c *ChainSource) FetchLabels(ctx context.Context) (etherscan.Labels, error) {
	return c.Labels, ctx.Err()
}

// MarketEventsSource adapts a world's marketplace stream to MarketSource.
type MarketEventsSource struct {
	byToken map[ethtypes.Hash][]opensea.Event
}

// NewMarketEventsSource indexes world marketplace events.
func NewMarketEventsSource(events []world.OpenSeaEvent) *MarketEventsSource {
	m := &MarketEventsSource{byToken: make(map[ethtypes.Hash][]opensea.Event)}
	for _, ev := range events {
		e := opensea.Event{
			TokenID:   ev.TokenID.Hex(),
			Name:      ev.Label + ".eth",
			Seller:    ev.Seller.Hex(),
			PriceUSD:  ev.PriceUSD,
			Timestamp: ev.Timestamp,
		}
		switch ev.Kind {
		case world.OSList:
			e.EventType = "listing"
		case world.OSSale:
			e.EventType = "sale"
			e.Buyer = ev.Buyer.Hex()
		}
		m.byToken[ev.TokenID] = append(m.byToken[ev.TokenID], e)
	}
	return m
}

// EventsForToken implements MarketSource.
func (m *MarketEventsSource) EventsForToken(ctx context.Context, tokenID ethtypes.Hash) ([]opensea.Event, error) {
	return m.byToken[tokenID], ctx.Err()
}

// LabelsFromWorld converts a world's custodial pools to Etherscan labels.
func LabelsFromWorld(res *world.Result) etherscan.Labels {
	var labels etherscan.Labels
	for _, a := range res.CoinbaseAddrs {
		labels.Coinbase = append(labels.Coinbase, a.Hex())
	}
	for _, a := range res.OtherCustodialAddrs {
		labels.OtherCustodial = append(labels.OtherCustodial, a.Hex())
	}
	return labels
}

// FromWorld assembles a dataset directly from an in-memory world, without
// HTTP, using the same Build pipeline as the remote path.
func FromWorld(ctx context.Context, res *world.Result, opts BuildOptions) (*Dataset, error) {
	if opts.Start == 0 {
		opts.Start = res.Config.Start
	}
	if opts.End == 0 {
		opts.End = res.Config.End
	}
	return Build(ctx,
		&StoreSource{Store: subgraph.BuildIndex(res.Chain)},
		&ChainSource{Chain: res.Chain, Labels: LabelsFromWorld(res)},
		NewMarketEventsSource(res.OpenSea),
		opts)
}
