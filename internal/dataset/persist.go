package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ensdropcatch/internal/ethtypes"
)

// On-disk layout: a directory with meta.json, domains.jsonl,
// transactions.jsonl, and market.jsonl. JSONL keeps multi-hundred-MB
// datasets streamable and diff-friendly.
const (
	metaFile      = "meta.json"
	domainsFile   = "domains.jsonl"
	subdomainFile = "subdomains.jsonl"
	txsFile       = "transactions.jsonl"
	marketFile    = "market.jsonl"
)

type meta struct {
	Start          int64    `json:"start"`
	End            int64    `json:"end"`
	Coinbase       []string `json:"coinbase"`
	OtherCustodial []string `json:"otherCustodial"`
	DomainCount    int      `json:"domainCount"`
	TxCount        int      `json:"txCount"`
}

// Save writes the dataset to dir, creating it if needed.
func (ds *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: mkdir: %w", err)
	}
	m := meta{Start: ds.Start, End: ds.End, DomainCount: len(ds.Domains), TxCount: len(ds.Txs)}
	for a := range ds.Coinbase {
		m.Coinbase = append(m.Coinbase, a.Hex())
	}
	for a := range ds.OtherCustodial {
		m.OtherCustodial = append(m.OtherCustodial, a.Hex())
	}
	sort.Strings(m.Coinbase)
	sort.Strings(m.OtherCustodial)
	if err := writeJSON(filepath.Join(dir, metaFile), m); err != nil {
		return err
	}

	domains := make([]*Domain, 0, len(ds.Domains))
	for _, d := range ds.Domains {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i].LabelHash.Hex() < domains[j].LabelHash.Hex() })
	if err := writeJSONL(filepath.Join(dir, domainsFile), domains); err != nil {
		return err
	}
	// Sort a copy into a total order so the files are byte-identical
	// across runs: crawl concurrency leaves ds.Txs ordered only up to
	// equal timestamps.
	txs := append([]*Tx(nil), ds.Txs...)
	sort.Slice(txs, func(i, j int) bool {
		if txs[i].Timestamp != txs[j].Timestamp {
			return txs[i].Timestamp < txs[j].Timestamp
		}
		if txs[i].Block != txs[j].Block {
			return txs[i].Block < txs[j].Block
		}
		return txs[i].Hash.Hex() < txs[j].Hash.Hex()
	})
	if err := writeJSONL(filepath.Join(dir, txsFile), txs); err != nil {
		return err
	}
	subs := append([]Subdomain(nil), ds.Subdomains...)
	sort.Slice(subs, func(i, j int) bool { return subs[i].Node.Hex() < subs[j].Node.Hex() })
	if err := writeJSONL(filepath.Join(dir, subdomainFile), subs); err != nil {
		return err
	}
	var market []MarketEvent
	for _, evs := range ds.Market {
		market = append(market, evs...)
	}
	// Stable + per-token sequence tiebreak: events are collected from a
	// map, so without a total order equal-timestamp rows would land in
	// random positions run to run.
	sort.SliceStable(market, func(i, j int) bool {
		if market[i].Timestamp != market[j].Timestamp {
			return market[i].Timestamp < market[j].Timestamp
		}
		if market[i].TokenID != market[j].TokenID {
			return market[i].TokenID.Hex() < market[j].TokenID.Hex()
		}
		if market[i].Kind != market[j].Kind {
			return market[i].Kind < market[j].Kind
		}
		return market[i].PriceUSD < market[j].PriceUSD
	})
	return writeJSONL(filepath.Join(dir, marketFile), market)
}

// Load reads a dataset previously written by Save and reindexes it.
func Load(dir string) (*Dataset, error) {
	var m meta
	if err := readJSON(filepath.Join(dir, metaFile), &m); err != nil {
		return nil, err
	}
	ds := New(m.Start, m.End)
	for _, s := range m.Coinbase {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return nil, fmt.Errorf("dataset: meta coinbase %q: %w", s, err)
		}
		ds.Coinbase[a] = true
	}
	for _, s := range m.OtherCustodial {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return nil, fmt.Errorf("dataset: meta custodial %q: %w", s, err)
		}
		ds.OtherCustodial[a] = true
	}

	if err := readJSONL(filepath.Join(dir, domainsFile), func(line []byte) error {
		var d Domain
		if err := json.Unmarshal(line, &d); err != nil {
			return err
		}
		ds.Domains[d.LabelHash] = &d
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readJSONL(filepath.Join(dir, txsFile), func(line []byte) error {
		var tx Tx
		if err := json.Unmarshal(line, &tx); err != nil {
			return err
		}
		ds.Txs = append(ds.Txs, &tx)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readJSONL(filepath.Join(dir, subdomainFile), func(line []byte) error {
		var sub Subdomain
		if err := json.Unmarshal(line, &sub); err != nil {
			return err
		}
		ds.Subdomains = append(ds.Subdomains, sub)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readJSONL(filepath.Join(dir, marketFile), func(line []byte) error {
		var ev MarketEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		ds.Market[ev.TokenID] = append(ds.Market[ev.TokenID], ev)
		return nil
	}); err != nil {
		return nil, err
	}
	ds.Reindex()
	return ds, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		_ = f.Close() // the encode error is the failure being reported
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	return f.Close()
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	return nil
}

func writeJSONL[T any](path string, items []T) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i := range items {
		if err := enc.Encode(items[i]); err != nil {
			_ = f.Close() // the encode error is the failure being reported
			return fmt.Errorf("dataset: encode %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close() // the flush error is the failure being reported
		return err
	}
	return f.Close()
}

func readJSONL(path string, fn func(line []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if err := fn(sc.Bytes()); err != nil {
			return fmt.Errorf("dataset: %s line %d: %w", path, lineNo, err)
		}
	}
	return sc.Err()
}
