package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/vfs"
)

// On-disk layouts. FormatJSON is a directory with meta.json,
// domains.jsonl, transactions.jsonl, subdomains.jsonl and market.jsonl:
// streamable and diff-friendly, but slow and allocation-heavy at scale.
// FormatBinary is a single versioned columnar snapshot (dataset.bin, see
// binary.go and DESIGN.md) built for million-domain worlds: one read to
// load, struct-of-arrays columns, and truncation detected by
// construction. Load auto-detects which layout a path holds.
const (
	metaFile      = "meta.json"
	domainsFile   = "domains.jsonl"
	subdomainFile = "subdomains.jsonl"
	txsFile       = "transactions.jsonl"
	marketFile    = "market.jsonl"
	binFile       = "dataset.bin"
)

// metaVersion is the JSON layout version written by Save. Version 2
// added the subdomain/market counts so every section is cross-checked on
// load; version-0 files (written before the field existed) still have
// their domain and transaction counts checked.
const metaVersion = 2

// Format selects the on-disk dataset encoding.
type Format int

// Supported dataset encodings.
const (
	// FormatJSON is the legacy directory-of-JSONL layout.
	FormatJSON Format = iota
	// FormatBinary is the versioned columnar snapshot (dataset.bin).
	FormatBinary
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "json"
}

// ParseFormat maps a flag value ("json" or "binary") to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "json":
		return FormatJSON, nil
	case "binary":
		return FormatBinary, nil
	default:
		return FormatJSON, fmt.Errorf("dataset: unknown format %q (want json or binary)", s)
	}
}

// ErrCorrupt marks a persisted dataset that cannot be trusted: a file
// truncated mid-write, a section whose loaded rows disagree with the
// counts its metadata declared, or binary framing damage. Load never
// silently drops rows — every such condition surfaces as an error
// wrapping ErrCorrupt.
var ErrCorrupt = errors.New("dataset: persisted dataset truncated or corrupt")

// CountMismatchError reports a persisted section whose loaded row count
// does not match the count declared in the dataset metadata — the
// footprint of a file truncated at a row boundary, which would otherwise
// load cleanly with rows silently missing.
type CountMismatchError struct {
	File string // section file name, e.g. "transactions.jsonl"
	Got  int    // rows actually loaded
	Want int    // rows the metadata declared
}

func (e *CountMismatchError) Error() string {
	return fmt.Sprintf("dataset: %s has %d rows, meta declares %d (truncated or mixed-generation save)", e.File, e.Got, e.Want)
}

// Unwrap makes errors.Is(err, ErrCorrupt) hold.
func (e *CountMismatchError) Unwrap() error { return ErrCorrupt }

type meta struct {
	FormatVersion  int      `json:"formatVersion"`
	Start          int64    `json:"start"`
	End            int64    `json:"end"`
	Coinbase       []string `json:"coinbase"`
	OtherCustodial []string `json:"otherCustodial"`
	DomainCount    int      `json:"domainCount"`
	TxCount        int      `json:"txCount"`
	SubdomainCount int      `json:"subdomainCount"`
	MarketCount    int      `json:"marketCount"`
}

type saveConfig struct {
	format Format
	fsync  bool
	fs     vfs.FS
}

// SaveOption tunes Save and SaveSnapshot.
type SaveOption func(*saveConfig)

// WithFormat selects the on-disk encoding (default FormatJSON).
func WithFormat(f Format) SaveOption {
	return func(c *saveConfig) { c.format = f }
}

// WithSync fsyncs every file (and its directory) before the rename that
// commits it, mirroring crawler.WithSync: the saved dataset survives
// power loss, not just process death. Opt-in because it costs one fsync
// per section file.
func WithSync() SaveOption {
	return func(c *saveConfig) { c.fsync = true }
}

// WithFS routes all disk writes through fsys (default vfs.OS). Chaos
// tests pass a vfs.Faulty to exercise the crash-atomicity contract
// under injected disk faults.
func WithFS(fsys vfs.FS) SaveOption {
	return func(c *saveConfig) { c.fs = fsys }
}

// Save writes the dataset to dir, creating it if needed. Every file is
// written to a temp name in dir and renamed into place, and meta.json —
// the commit point whose counts Load cross-checks — lands last, so a
// crash mid-save leaves either the complete previous dataset or a
// detectable partial one, never a silently shortened mix.
func (ds *Dataset) Save(dir string, opts ...SaveOption) error {
	var cfg saveConfig
	for _, o := range opts {
		o(&cfg)
	}
	fsys := vfs.OrOS(cfg.fs)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: mkdir: %w", err)
	}
	if cfg.format == FormatBinary {
		return ds.saveBinary(fsys, filepath.Join(dir, binFile), cfg.fsync)
	}
	return ds.saveJSON(fsys, dir, cfg.fsync)
}

// SaveSnapshot writes the dataset as a single binary columnar snapshot
// file at path (atomically, via temp-and-rename). Load accepts the
// resulting file directly.
func (ds *Dataset) SaveSnapshot(path string, opts ...SaveOption) error {
	var cfg saveConfig
	for _, o := range opts {
		o(&cfg)
	}
	return ds.saveBinary(vfs.OrOS(cfg.fs), path, cfg.fsync)
}

func (ds *Dataset) saveJSON(fsys vfs.FS, dir string, sync bool) error {
	domains := ds.sortedDomains()
	txs := ds.sortedTxs()
	subs := ds.sortedSubdomains()
	market := ds.sortedMarket()

	if err := writeJSONL(fsys, filepath.Join(dir, domainsFile), domains, sync); err != nil {
		return err
	}
	if err := writeJSONL(fsys, filepath.Join(dir, txsFile), txs, sync); err != nil {
		return err
	}
	if err := writeJSONL(fsys, filepath.Join(dir, subdomainFile), subs, sync); err != nil {
		return err
	}
	if err := writeJSONL(fsys, filepath.Join(dir, marketFile), market, sync); err != nil {
		return err
	}

	m := meta{
		FormatVersion:  metaVersion,
		Start:          ds.Start,
		End:            ds.End,
		DomainCount:    len(domains),
		TxCount:        len(txs),
		SubdomainCount: len(subs),
		MarketCount:    len(market),
	}
	for _, a := range sortedAddrs(ds.Coinbase) {
		m.Coinbase = append(m.Coinbase, a.Hex())
	}
	for _, a := range sortedAddrs(ds.OtherCustodial) {
		m.OtherCustodial = append(m.OtherCustodial, a.Hex())
	}
	// meta.json is the commit point: it declares the row count of every
	// section, and it is written only after all sections are in place.
	if err := vfs.Hit(fsys, "dataset.save.pre-meta"); err != nil {
		return fmt.Errorf("dataset: commit %s: %w", metaFile, err)
	}
	return writeJSON(fsys, filepath.Join(dir, metaFile), m, sync)
}

// sortedDomains returns the domains in label-hash byte order — the total
// order every persisted layout shares.
func (ds *Dataset) sortedDomains() []*Domain {
	domains := make([]*Domain, 0, len(ds.Domains))
	for _, d := range ds.Domains {
		//lint:allow maporder sorted into a total order immediately below
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool {
		return bytes.Compare(domains[i].LabelHash[:], domains[j].LabelHash[:]) < 0
	})
	return domains
}

// sortedTxs returns a copy of Txs in (timestamp, block, hash) order — a
// strict total order over the deduplicated list, so files are
// byte-identical across runs regardless of crawl concurrency.
func (ds *Dataset) sortedTxs() []*Tx {
	txs := append([]*Tx(nil), ds.Txs...)
	sortTxsForSave(txs)
	return txs
}

// sortTxsForSave sorts txs in place into the persisted total order.
func sortTxsForSave(txs []*Tx) {
	sort.Slice(txs, func(i, j int) bool {
		if txs[i].Timestamp != txs[j].Timestamp {
			return txs[i].Timestamp < txs[j].Timestamp
		}
		if txs[i].Block != txs[j].Block {
			return txs[i].Block < txs[j].Block
		}
		return bytes.Compare(txs[i].Hash[:], txs[j].Hash[:]) < 0
	})
}

// sortedSubdomains returns a copy of Subdomains stably sorted by node
// bytes (ties keep their deterministic collection order).
func (ds *Dataset) sortedSubdomains() []Subdomain {
	subs := append([]Subdomain(nil), ds.Subdomains...)
	sort.SliceStable(subs, func(i, j int) bool {
		return bytes.Compare(subs[i].Node[:], subs[j].Node[:]) < 0
	})
	return subs
}

// sortedMarket flattens the per-token event map into one slice under a
// total order — (timestamp, token, kind, price, seller, buyer) — so
// equal-timestamp rows cannot land in map-collection order, and the
// order does not depend on sort stability.
func (ds *Dataset) sortedMarket() []MarketEvent {
	var market []MarketEvent
	for _, evs := range ds.Market {
		//lint:allow maporder sorted into a total order immediately below
		market = append(market, evs...)
	}
	sort.Slice(market, func(i, j int) bool {
		a, b := &market[i], &market[j]
		if a.Timestamp != b.Timestamp {
			return a.Timestamp < b.Timestamp
		}
		if c := bytes.Compare(a.TokenID[:], b.TokenID[:]); c != 0 {
			return c < 0
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.PriceUSD != b.PriceUSD {
			return a.PriceUSD < b.PriceUSD
		}
		if a.Seller != b.Seller {
			return a.Seller < b.Seller
		}
		return a.Buyer < b.Buyer
	})
	return market
}

// sortedAddrs returns the keys of m in address byte order.
func sortedAddrs(m map[ethtypes.Address]bool) []ethtypes.Address {
	addrs := make([]ethtypes.Address, 0, len(m))
	for a := range m {
		//lint:allow maporder sorted into a total order immediately below
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	return addrs
}

// Load reads a dataset previously written by Save and reindexes it.
// path may be a dataset directory (binary if dataset.bin is present,
// JSON otherwise) or a binary snapshot file written by SaveSnapshot.
// Every section's loaded row count is cross-checked against its declared
// count; a file truncated at any byte — even cleanly at a row boundary —
// makes Load fail with an error wrapping ErrCorrupt rather than return a
// silently shortened dataset.
func Load(path string) (*Dataset, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if !fi.IsDir() {
		return loadBinaryFile(path)
	}
	bin := filepath.Join(path, binFile)
	if _, err := os.Stat(bin); err == nil {
		return loadBinaryFile(bin)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return loadJSON(path)
}

func loadJSON(dir string) (*Dataset, error) {
	var m meta
	if err := readJSON(filepath.Join(dir, metaFile), &m); err != nil {
		return nil, err
	}
	if m.FormatVersion > metaVersion {
		return nil, fmt.Errorf("%w: meta formatVersion %d newer than supported %d", ErrCorrupt, m.FormatVersion, metaVersion)
	}
	ds := New(m.Start, m.End)
	for _, s := range m.Coinbase {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return nil, fmt.Errorf("dataset: meta coinbase %q: %w", s, err)
		}
		ds.Coinbase[a] = true
	}
	for _, s := range m.OtherCustodial {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return nil, fmt.Errorf("dataset: meta custodial %q: %w", s, err)
		}
		ds.OtherCustodial[a] = true
	}

	domainRows, err := readJSONL(filepath.Join(dir, domainsFile), func(line []byte) error {
		var d Domain
		if err := json.Unmarshal(line, &d); err != nil {
			return err
		}
		ds.Domains[d.LabelHash] = &d
		return nil
	})
	if err != nil {
		return nil, err
	}
	txRows, err := readJSONL(filepath.Join(dir, txsFile), func(line []byte) error {
		var tx Tx
		if err := json.Unmarshal(line, &tx); err != nil {
			return err
		}
		ds.Txs = append(ds.Txs, &tx)
		return nil
	})
	if err != nil {
		return nil, err
	}
	subRows, err := readJSONL(filepath.Join(dir, subdomainFile), func(line []byte) error {
		var sub Subdomain
		if err := json.Unmarshal(line, &sub); err != nil {
			return err
		}
		ds.Subdomains = append(ds.Subdomains, sub)
		return nil
	})
	if err != nil {
		return nil, err
	}
	marketRows, err := readJSONL(filepath.Join(dir, marketFile), func(line []byte) error {
		var ev MarketEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		ds.Market[ev.TokenID] = append(ds.Market[ev.TokenID], ev)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// A file cut at a line boundary parses cleanly; the declared counts
	// are what catch it. Domain/tx counts are present in every meta
	// version; subdomain/market counts arrived in version 2.
	if domainRows != m.DomainCount {
		return nil, &CountMismatchError{File: domainsFile, Got: domainRows, Want: m.DomainCount}
	}
	if txRows != m.TxCount {
		return nil, &CountMismatchError{File: txsFile, Got: txRows, Want: m.TxCount}
	}
	if m.FormatVersion >= 2 {
		if subRows != m.SubdomainCount {
			return nil, &CountMismatchError{File: subdomainFile, Got: subRows, Want: m.SubdomainCount}
		}
		if marketRows != m.MarketCount {
			return nil, &CountMismatchError{File: marketFile, Got: marketRows, Want: m.MarketCount}
		}
	}
	ds.Reindex()
	return ds, nil
}

// writeAtomic streams write's output to a same-directory temp file and
// renames it over path, so a crash mid-write leaves the previous file
// intact — readers never observe a half-written one. With sync, the file
// is fsynced before the rename and the directory after it, matching the
// crawler.WithSync durability contract. All disk traffic goes through
// fsys so chaos tests can inject write, sync, and rename faults; the
// named crash points bracket the commit rename, the seam the atomicity
// claim depends on.
func writeAtomic(fsys vfs.FS, path string, sync bool, write func(f vfs.File) error) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", tmp, err)
	}
	werr := write(f)
	if werr == nil && sync {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = vfs.Hit(fsys, "dataset.writeAtomic.pre-rename")
	}
	if werr != nil {
		_ = fsys.Remove(tmp) // best-effort cleanup; werr is the failure being reported
		return fmt.Errorf("dataset: write %s: %w", path, werr)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp) // best-effort cleanup; the rename error is the failure being reported
		return fmt.Errorf("dataset: commit %s: %w", path, err)
	}
	if err := vfs.Hit(fsys, "dataset.writeAtomic.post-rename"); err != nil {
		// The rename is already durable-in-order; the crash lands after
		// the commit, so the caller sees the failure but the file is
		// whole.
		return fmt.Errorf("dataset: commit %s: %w", path, err)
	}
	if sync {
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			return fmt.Errorf("dataset: sync dir %s: %w", filepath.Dir(path), err)
		}
	}
	return nil
}

func writeJSON(fsys vfs.FS, path string, v any, sync bool) error {
	return writeAtomic(fsys, path, sync, func(w vfs.File) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	return nil
}

func writeJSONL[T any](fsys vfs.FS, path string, items []T, sync bool) error {
	return writeAtomic(fsys, path, sync, func(w vfs.File) error {
		bw := bufio.NewWriterSize(w, 1<<20)
		enc := json.NewEncoder(bw)
		for i := range items {
			if err := enc.Encode(items[i]); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}

// readJSONL streams path line by line through fn and returns how many
// non-empty lines it processed, so callers can cross-check the count
// against the dataset metadata.
func readJSONL(path string, fn func(line []byte) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	lineNo := 0
	rows := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if err := fn(sc.Bytes()); err != nil {
			return rows, fmt.Errorf("%w: %s line %d: %v", ErrCorrupt, path, lineNo, err)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return rows, fmt.Errorf("dataset: read %s: %w", path, err)
	}
	return rows, nil
}
