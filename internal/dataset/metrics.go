package dataset

import (
	"sync/atomic"

	"ensdropcatch/internal/obs"
)

// metricSet holds the package's instrumentation handles.
type metricSet struct {
	parseErrors       *obs.Counter
	spoolRecoveries   *obs.Counter
	snapshotWrites    *obs.Counter
	snapshotRestores  *obs.Counter
	snapshotFallbacks *obs.Counter
}

var pkgMetrics atomic.Pointer[metricSet]

func init() { InitMetrics(obs.Default) }

// InitMetrics points the package's instrumentation at reg (nil resets
// to obs.Default).
func InitMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	pkgMetrics.Store(&metricSet{
		parseErrors: reg.Counter("dataset_parse_errors_total",
			"Malformed numeric fields rejected while assembling the dataset."),
		spoolRecoveries: reg.Counter("dataset_spool_recoveries_total",
			"Truncated trailing spool entries dropped and re-crawled on resume."),
		snapshotWrites: reg.Counter("dataset_spool_snapshot_writes_total",
			"Spool snapshots written during the transaction crawl."),
		snapshotRestores: reg.Counter("dataset_spool_snapshot_restores_total",
			"Resumes that restored absorbed transactions from a spool snapshot."),
		snapshotFallbacks: reg.Counter("dataset_spool_snapshot_fallbacks_total",
			"Unusable spool snapshots discarded in favor of a full spool re-parse."),
	})
}

func pm() *metricSet { return pkgMetrics.Load() }
