package dataset

import (
	"context"
	"net/http/httptest"
	"testing"

	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

var (
	testWorld *world.Result
	testDS    *Dataset
)

func sharedWorld(t *testing.T) *world.Result {
	t.Helper()
	if testWorld == nil {
		res, err := world.Generate(world.DefaultConfig(900))
		if err != nil {
			t.Fatal(err)
		}
		testWorld = res
	}
	return testWorld
}

func sharedDataset(t *testing.T) *Dataset {
	t.Helper()
	if testDS == nil {
		ds, err := FromWorld(context.Background(), sharedWorld(t), BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		testDS = ds
	}
	return testDS
}

func TestFromWorldCompleteness(t *testing.T) {
	res := sharedWorld(t)
	ds := sharedDataset(t)

	if len(ds.Domains) != len(res.Truth.Domains) {
		t.Errorf("domains = %d, want %d", len(ds.Domains), len(res.Truth.Domains))
	}
	// Every indexed (non-unindexed) truth domain must be recoverable by
	// label; unindexed ones must be present but label-less.
	var unindexed int
	for _, dt := range res.Truth.Domains {
		d, ok := ds.ByLabel(dt.Label)
		if dt.Unindexed {
			unindexed++
			// A later re-registration through the controller reveals the
			// label; with only the legacy cycle it must stay hidden.
			if len(dt.Cycles) == 1 && ok {
				t.Errorf("unindexed domain %q recoverable by label", dt.Label)
			}
			continue
		}
		if !ok {
			t.Errorf("domain %q missing from dataset", dt.Label)
			continue
		}
		if got := len(d.Registrations()); got != countRegs(dt) {
			t.Errorf("%q: %d registrations, want %d", dt.Label, got, countRegs(dt))
		}
	}
	if unindexed == 0 {
		t.Log("warning: world contained no unindexed names")
	}
	if len(ds.Coinbase) != 25 || len(ds.OtherCustodial) != 558 {
		t.Errorf("custodial sets: %d/%d", len(ds.Coinbase), len(ds.OtherCustodial))
	}
}

func countRegs(dt *world.DomainTruth) int {
	return len(dt.Cycles)
}

func TestEventOrderingAndExpiry(t *testing.T) {
	res := sharedWorld(t)
	ds := sharedDataset(t)
	checked := 0
	for _, dt := range res.Truth.Domains {
		if dt.Unindexed {
			continue
		}
		d, ok := ds.ByLabel(dt.Label)
		if !ok {
			continue
		}
		for i := 1; i < len(d.Events); i++ {
			if d.Events[i].Timestamp < d.Events[i-1].Timestamp {
				t.Fatalf("%q events out of order", dt.Label)
			}
		}
		// FinalExpiry at window end must match the truth's last cycle.
		last := dt.Cycles[len(dt.Cycles)-1]
		if got := d.FinalExpiry(res.Config.End + 1); got != last.Expiry {
			t.Errorf("%q final expiry %d, want %d", dt.Label, got, last.Expiry)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestIncomeMatchesTruth(t *testing.T) {
	res := sharedWorld(t)
	ds := sharedDataset(t)
	oracle := res.Oracle

	verified := 0
	for _, dt := range res.Truth.Domains {
		if dt.Unindexed || dt.IncomeUSD == 0 || len(dt.Cycles) == 0 {
			continue
		}
		c := dt.Cycles[0]
		end := c.Expiry
		if end > res.Config.End {
			end = res.Config.End
		}
		var usd float64
		var n int
		for _, tx := range ds.IncomingOf(c.Owner, c.RegisteredAt, end+1) {
			usd += oracle.USD(tx.ValueEth(), tx.Timestamp)
			n++
		}
		rel := (usd - dt.IncomeUSD) / dt.IncomeUSD
		if rel < -0.02 || rel > 0.02 {
			t.Errorf("%q income %.2f, truth %.2f (rel %.3f)", dt.Label, usd, dt.IncomeUSD, rel)
		}
		if n != dt.Transactions {
			t.Errorf("%q tx count %d, truth %d", dt.Label, n, dt.Transactions)
		}
		verified++
		if verified >= 50 {
			break
		}
	}
	if verified < 20 {
		t.Fatalf("only verified %d domains", verified)
	}
}

func TestRemoteEqualsLocal(t *testing.T) {
	res := sharedWorld(t)
	local := sharedDataset(t)

	// Stand up the three HTTP substrates and crawl them for real.
	store := subgraph.BuildIndex(res.Chain)
	sgSrv := httptest.NewServer(subgraph.NewServer(store, nil))
	defer sgSrv.Close()
	esSrv := httptest.NewServer(etherscan.NewServer(res.Chain, LabelsFromWorld(res), 1_000_000, nil))
	defer esSrv.Close()
	osSrv := httptest.NewServer(opensea.NewServer(res.OpenSea))
	defer osSrv.Close()

	esClient := etherscan.NewClient(esSrv.URL, "test")
	esClient.MinInterval = 0
	remote, err := Build(context.Background(),
		subgraph.NewClient(sgSrv.URL),
		esClient,
		opensea.NewClient(osSrv.URL),
		BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}

	if len(remote.Domains) != len(local.Domains) {
		t.Errorf("domains: remote %d, local %d", len(remote.Domains), len(local.Domains))
	}
	if len(remote.Txs) != len(local.Txs) {
		t.Errorf("txs: remote %d, local %d", len(remote.Txs), len(local.Txs))
	}
	if len(remote.Market) != len(local.Market) {
		t.Errorf("market tokens: remote %d, local %d", len(remote.Market), len(local.Market))
	}
	for lh, ld := range local.Domains {
		rd, ok := remote.Domains[lh]
		if !ok {
			t.Fatalf("remote missing domain %s", lh)
		}
		if rd.Label != ld.Label || len(rd.Events) != len(ld.Events) {
			t.Fatalf("domain %s differs: %q/%d vs %q/%d", lh, rd.Label, len(rd.Events), ld.Label, len(ld.Events))
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := sharedDataset(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Domains) != len(ds.Domains) || len(back.Txs) != len(ds.Txs) {
		t.Fatalf("round trip lost data: %d/%d domains, %d/%d txs",
			len(back.Domains), len(ds.Domains), len(back.Txs), len(ds.Txs))
	}
	if back.Start != ds.Start || back.End != ds.End {
		t.Error("window lost")
	}
	if len(back.Coinbase) != len(ds.Coinbase) || len(back.OtherCustodial) != len(ds.OtherCustodial) {
		t.Error("custodial labels lost")
	}
	for lh, d := range ds.Domains {
		bd, ok := back.Domains[lh]
		if !ok || bd.Label != d.Label || len(bd.Events) != len(d.Events) {
			t.Fatalf("domain %s mismatch after reload", lh)
		}
	}
	// Indexes must work after load.
	for _, d := range ds.Domains {
		if d.Label != "" {
			if _, ok := back.ByLabel(d.Label); !ok {
				t.Fatalf("ByLabel(%q) failed after reload", d.Label)
			}
			break
		}
	}
	market := 0
	for _, evs := range back.Market {
		market += len(evs)
	}
	wantMarket := 0
	for _, evs := range ds.Market {
		wantMarket += len(evs)
	}
	if market != wantMarket {
		t.Errorf("market events %d, want %d", market, wantMarket)
	}
}

func TestTxValueEth(t *testing.T) {
	cases := []struct {
		wei  string
		want float64
	}{
		{"1000000000000000000", 1},
		{"500000000000000000", 0.5},
		{"0", 0},
		{"not-a-number", 0},
	}
	for _, c := range cases {
		tx := Tx{ValueWei: c.wei}
		if got := tx.ValueEth(); got != c.want {
			t.Errorf("ValueEth(%q) = %v, want %v", c.wei, got, c.want)
		}
	}
}

func TestIncomingOfFiltersDirectionWindowAndFailures(t *testing.T) {
	ds := sharedDataset(t)
	for addr, txs := range ds.txByAddr {
		in := ds.IncomingOf(addr, ds.Start, ds.End+1)
		for _, tx := range in {
			if tx.To != addr || tx.Failed {
				t.Fatal("IncomingOf returned an outgoing or failed tx")
			}
		}
		if len(txs) > 0 {
			return // one address is enough
		}
	}
}
