package dataset

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/ethtypes"
)

// The transaction crawl is by far the longest stage of assembly (the
// paper crawled 9.7M transactions under Etherscan's rate limit). This
// file adds resumability: per-address results stream to an append-only
// JSONL spool and a checkpoint records completed addresses, so an
// interrupted crawl restarts where it stopped instead of re-paying hours
// of rate-limited requests.

const (
	spoolFile      = "txspool.jsonl"
	checkpointFile = "txcrawl.checkpoint"
)

// spoolEntry is one spooled per-address result.
type spoolEntry struct {
	Address string `json:"address"`
	Txs     []*Tx  `json:"txs"`
}

// crawlTxsResumable crawls transaction lists for addrs with concurrency
// workers, spooling results under dir. Completed addresses recorded in
// the checkpoint are skipped and their transactions recovered from the
// spool. onAddressDone is invoked once per covered address — including
// addresses recovered from the checkpoint — so progress reporting sees
// the full total.
func crawlTxsResumable(ctx context.Context, dir string, txs TxSource, addrs []ethtypes.Address, workers int, ds *Dataset, onAddressDone func()) error {
	if onAddressDone == nil {
		onAddressDone = func() {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: resume dir: %w", err)
	}
	cp, err := crawler.OpenCheckpoint(filepath.Join(dir, checkpointFile))
	if err != nil {
		return err
	}
	defer cp.Close()

	seen := map[ethtypes.Hash]bool{}
	var mu sync.Mutex
	absorb := func(rows []*Tx) {
		for _, tx := range rows {
			if !seen[tx.Hash] {
				seen[tx.Hash] = true
				ds.Txs = append(ds.Txs, tx)
			}
		}
	}

	// Recover prior progress from the spool. Entries whose address is
	// not checkpointed were partially written and are re-crawled.
	spoolPath := filepath.Join(dir, spoolFile)
	if f, err := os.Open(spoolPath); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var entry spoolEntry
			if err := json.Unmarshal(sc.Bytes(), &entry); err != nil {
				f.Close()
				return fmt.Errorf("dataset: corrupt spool: %w", err)
			}
			if cp.Done(entry.Address) {
				absorb(entry.Txs)
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return fmt.Errorf("dataset: read spool: %w", err)
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("dataset: open spool: %w", err)
	}

	spool, err := os.OpenFile(spoolPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dataset: append spool: %w", err)
	}
	defer spool.Close()
	spoolEnc := json.NewEncoder(spool)

	// Only crawl what is not checkpointed; recovered addresses count as
	// done immediately.
	var todo []ethtypes.Address
	for _, a := range addrs {
		if !cp.Done(strings0x(a)) {
			todo = append(todo, a)
		} else {
			onAddressDone()
		}
	}
	sort.Slice(todo, func(i, j int) bool { return lessAddr(todo[i], todo[j]) })

	err = crawler.ForEach(ctx, workers, todo, func(ctx context.Context, addr ethtypes.Address) error {
		records, err := txs.TxList(ctx, addr)
		if err != nil {
			return fmt.Errorf("txlist %s: %w", addr, err)
		}
		rows := make([]*Tx, 0, len(records))
		for i := range records {
			tx, err := fromRecord(&records[i])
			if err != nil {
				return err
			}
			rows = append(rows, tx)
		}
		mu.Lock()
		defer mu.Unlock()
		// Spool first, then checkpoint: a crash between the two re-crawls
		// the address (safe), never loses data.
		if err := spoolEnc.Encode(spoolEntry{Address: strings0x(addr), Txs: rows}); err != nil {
			return fmt.Errorf("spool %s: %w", addr, err)
		}
		if err := cp.Mark(strings0x(addr)); err != nil {
			return err
		}
		absorb(rows)
		onAddressDone()
		return nil
	})
	if err != nil {
		return err
	}
	return nil
}

func strings0x(a ethtypes.Address) string {
	text, _ := a.MarshalText()
	return string(text)
}
