package dataset

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/dataset/codec"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/vfs"
)

// The transaction crawl is by far the longest stage of assembly (the
// paper crawled 9.7M transactions under Etherscan's rate limit). This
// file adds resumability: per-address results stream to an append-only
// JSONL spool and a checkpoint records completed addresses, so an
// interrupted crawl restarts where it stopped instead of re-paying hours
// of rate-limited requests.
//
// Crash-consistency contract: an address's result is spooled first and
// checkpointed second, so a crash between the two re-crawls the address
// (safe) and never loses data. The converse also holds on recovery: a
// torn *final* spool line — the footprint of dying mid-write — is only
// tolerable while its address is absent from the checkpoint; a corrupt
// line for a checkpointed address (or any corrupt non-final line) means
// data that was promised durable is gone, which is a hard error.

// A spool snapshot (txspool.snap) accelerates that recovery: it holds
// every transaction absorbed so far in binary columnar form plus the
// spool byte offset those entries cover, so resume loads one file and
// replays only the spool tail instead of re-parsing gigabytes of JSONL.
// The spool stays the source of truth — a missing, torn, or stale
// snapshot is never an error, just a slower resume.

const (
	spoolFile      = "txspool.jsonl"
	spoolSnapFile  = "txspool.snap"
	checkpointFile = "txcrawl.checkpoint"
)

var (
	snapMagic  = []byte("ENSSNP1\n")
	snapFooter = []byte("ENSSEND\n")
)

// ErrSpoolCorrupt marks spool damage that resume cannot safely repair.
var ErrSpoolCorrupt = errors.New("dataset: corrupt spool")

// spoolEntry is one spooled per-address result.
type spoolEntry struct {
	Address string `json:"address"`
	Txs     []*Tx  `json:"txs"`
}

// crawlTxsResumable crawls transaction lists for addrs with concurrency
// workers, spooling results under dir. Completed addresses recorded in
// the checkpoint are skipped and their transactions recovered from the
// spool. onAddressDone is invoked once per covered address — including
// addresses recovered from the checkpoint — so progress reporting sees
// the full total. fsync additionally syncs the spool and checkpoint to
// disk at every completed address. snapEvery > 0 writes a spool
// snapshot every that many completed addresses (and once at the end),
// so the next resume replays only the spool tail.
func crawlTxsResumable(ctx context.Context, dir string, txs TxSource, addrs []ethtypes.Address, workers int, ds *Dataset, onAddressDone func(), fsync bool, snapEvery int, fsys vfs.FS) error {
	if onAddressDone == nil {
		onAddressDone = func() {}
	}
	fsys = vfs.OrOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: resume dir: %w", err)
	}
	cpOpts := []crawler.CheckpointOption{crawler.WithFS(fsys)}
	if fsync {
		cpOpts = append(cpOpts, crawler.WithSync())
	}
	cp, err := crawler.OpenCheckpoint(filepath.Join(dir, checkpointFile), cpOpts...)
	if err != nil {
		return err
	}
	defer cp.Close()

	seen := map[ethtypes.Hash]bool{}
	for _, tx := range ds.Txs {
		seen[tx.Hash] = true
	}
	var mu sync.Mutex
	absorb := func(rows []*Tx) {
		for _, tx := range rows {
			if !seen[tx.Hash] {
				seen[tx.Hash] = true
				ds.Txs = append(ds.Txs, tx)
			}
		}
	}

	spoolPath := filepath.Join(dir, spoolFile)
	snapPath := filepath.Join(dir, spoolSnapFile)

	// Fast resume: a valid snapshot pre-loads everything the spool held
	// up to its covered offset, and recovery replays only the tail. Any
	// snapshot anomaly — torn file, bad framing, offset past the spool —
	// discards the snapshot and falls back to a full re-parse: the
	// snapshot is a cache, the spool is the record.
	var startOffset int64
	snapTxs, covered, snapErr := loadSpoolSnapshot(snapPath)
	if snapErr == nil {
		if fi, err := os.Stat(spoolPath); err == nil && covered <= fi.Size() {
			absorb(snapTxs)
			startOffset = covered
			pm().snapshotRestores.Inc()
		} else {
			discardSpoolSnapshot(snapPath)
		}
	} else if !os.IsNotExist(snapErr) {
		discardSpoolSnapshot(snapPath)
	}

	if err := recoverSpool(spoolPath, startOffset, cp, absorb); err != nil {
		return err
	}

	spool, err := fsys.OpenFile(spoolPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dataset: append spool: %w", err)
	}
	defer spool.Close()
	if fsync {
		// The spool and checkpoint may have just been created: fsync the
		// containing directory so the *names* survive power loss too —
		// fsyncing file contents alone does not make a fresh directory
		// entry durable.
		if err := fsys.SyncDir(dir); err != nil {
			return fmt.Errorf("dataset: sync resume dir: %w", err)
		}
	}
	spoolEnc := json.NewEncoder(spool)

	// writeSnap persists the current absorbed state (mu must be held).
	// Snapshot failures never fail the crawl — the next resume simply
	// re-parses the spool.
	writeSnap := func() {
		fi, err := spool.Stat()
		if err != nil {
			return
		}
		if writeSpoolSnapshot(fsys, snapPath, ds.Txs, fi.Size(), fsync) != nil {
			return
		}
		pm().snapshotWrites.Inc()
	}
	sinceSnap := 0

	// Only crawl what is not checkpointed; recovered addresses count as
	// done immediately.
	var todo []ethtypes.Address
	for _, a := range addrs {
		if !cp.Done(strings0x(a)) {
			todo = append(todo, a)
		} else {
			onAddressDone()
		}
	}
	sort.Slice(todo, func(i, j int) bool { return lessAddr(todo[i], todo[j]) })

	err = crawler.ForEach(ctx, workers, todo, func(ctx context.Context, addr ethtypes.Address) error {
		// One span per crawled address, as in the non-resumable path.
		ctx, sp := trace.Start(ctx, "crawl.address")
		if sp != nil {
			sp.Annotate("address", addr.Hex())
		}
		records, err := txs.TxList(ctx, addr)
		sp.EndErr(err)
		if err != nil {
			return fmt.Errorf("txlist %s: %w", addr, err)
		}
		rows := make([]*Tx, 0, len(records))
		for i := range records {
			tx, err := fromRecord(&records[i])
			if err != nil {
				return err
			}
			rows = append(rows, tx)
		}
		mu.Lock()
		defer mu.Unlock()
		// Spool first, then checkpoint: a crash between the two re-crawls
		// the address (safe), never loses data.
		if err := spoolEnc.Encode(spoolEntry{Address: strings0x(addr), Txs: rows}); err != nil {
			return fmt.Errorf("spool %s: %w", addr, err)
		}
		if fsync {
			if err := spool.Sync(); err != nil {
				return fmt.Errorf("sync spool %s: %w", addr, err)
			}
		}
		// The crash-consistency contract's critical window: the entry is
		// spooled but not yet checkpointed. A crash here re-crawls the
		// address — chaos tests park a crash point on this seam to prove
		// it.
		if err := vfs.Hit(fsys, "dataset.spool.pre-mark"); err != nil {
			return fmt.Errorf("spool %s: %w", addr, err)
		}
		if err := cp.Mark(strings0x(addr)); err != nil {
			return err
		}
		absorb(rows)
		onAddressDone()
		if snapEvery > 0 {
			sinceSnap++
			if sinceSnap >= snapEvery {
				sinceSnap = 0
				writeSnap()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// A final snapshot makes the next resume of a finished (or cleanly
	// stopped) crawl a single read with an empty tail.
	if snapEvery > 0 && len(todo) > 0 {
		mu.Lock()
		writeSnap()
		mu.Unlock()
	}
	return nil
}

// writeSpoolSnapshot atomically persists the transactions absorbed so
// far plus the spool byte offset they cover. The offset is always a
// line boundary: snapshots are written under the same lock as spool
// appends, after complete entries only.
func writeSpoolSnapshot(fsys vfs.FS, path string, txs []*Tx, covered int64, sync bool) error {
	sorted := append([]*Tx(nil), txs...)
	sortTxsForSave(sorted)
	return writeAtomic(fsys, path, sync, func(f vfs.File) error {
		w := codec.NewWriter(f)
		w.Raw(snapMagic)
		w.U16(binVersion)
		w.U64(uint64(covered))
		w.U64(uint64(len(sorted)))
		encodeTxColumns(w, sorted)
		w.Raw(snapFooter)
		return w.Flush()
	})
}

// loadSpoolSnapshot reads a spool snapshot. It is strict — any framing,
// count, or decode anomaly (including truncation at any byte) is an
// error — because the caller's response is to discard the snapshot and
// re-parse the spool, never to trust a damaged cache.
func loadSpoolSnapshot(path string) ([]*Tx, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err // not-exist must stay recognizable to the caller
	}
	r := codec.NewReader(data)
	if magic := r.Raw(len(snapMagic)); r.Err() != nil || !bytes.Equal(magic, snapMagic) {
		return nil, 0, fmt.Errorf("%w: bad spool snapshot magic", ErrCorrupt)
	}
	v := r.U16()
	covered := r.U64()
	rows := r.U64()
	if r.Err() != nil {
		return nil, 0, fmt.Errorf("%w: truncated spool snapshot header", ErrCorrupt)
	}
	if v != binVersion {
		return nil, 0, fmt.Errorf("dataset: spool snapshot version %d not supported (want %d)", v, binVersion)
	}
	if covered > math.MaxInt64 {
		return nil, 0, fmt.Errorf("%w: spool snapshot offset %d out of range", ErrCorrupt, covered)
	}
	if rows > uint64(r.Remaining()) {
		return nil, 0, fmt.Errorf("%w: spool snapshot declares %d rows in %d bytes", ErrCorrupt, rows, r.Remaining())
	}
	txs, err := decodeTxColumns(r, int(rows))
	if err != nil {
		return nil, 0, err
	}
	if footer := r.Raw(len(snapFooter)); r.Err() != nil || !bytes.Equal(footer, snapFooter) {
		return nil, 0, fmt.Errorf("%w: bad spool snapshot footer", ErrCorrupt)
	}
	if n := r.Remaining(); n != 0 {
		return nil, 0, fmt.Errorf("%w: %d bytes after spool snapshot footer", ErrCorrupt, n)
	}
	out := make([]*Tx, len(txs))
	for i := range txs {
		out[i] = &txs[i]
	}
	return out, int64(covered), nil
}

// discardSpoolSnapshot drops an unusable snapshot so it cannot mislead
// the next resume either.
func discardSpoolSnapshot(path string) {
	pm().snapshotFallbacks.Inc()
	_ = os.Remove(path) // best-effort: a lingering bad snapshot is re-discarded next resume
}

// recoverSpool replays the spool at path from startOffset (a line
// boundary — 0, or the offset a snapshot already covers), absorbing
// entries whose address the checkpoint confirms complete. A torn or
// unparseable
// *final* line whose address is not checkpointed is the footprint of a
// crash mid-write: the line is truncated away (so appends start on a
// clean boundary) and its address will simply be re-crawled. Corruption
// anywhere else — a bad non-final line, or a bad final line for an
// address the checkpoint claims durable — is unrecoverable data loss
// and fails with ErrSpoolCorrupt.
func recoverSpool(path string, startOffset int64, cp *crawler.Checkpoint, absorb func([]*Tx)) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dataset: open spool: %w", err)
	}
	defer f.Close()

	if startOffset > 0 {
		if _, err := f.Seek(startOffset, io.SeekStart); err != nil {
			return fmt.Errorf("dataset: seek spool: %w", err)
		}
	}
	r := bufio.NewReaderSize(f, 1<<20)
	offset := startOffset // start of the line being read
	var bad []byte   // first undecodable line seen
	badOffset := int64(-1)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			if bad != nil {
				// The damage was not on the final line: entries written
				// after it prove this is not a mid-write crash tail.
				return fmt.Errorf("%w: undecodable entry at byte %d followed by more data", ErrSpoolCorrupt, badOffset)
			}
			lineStart := offset
			offset += int64(len(line))
			trimmed := bytes.TrimRight(line, "\n")
			if len(trimmed) == 0 {
				continue
			}
			var entry spoolEntry
			// A line missing its trailing newline is torn even if its
			// prefix happens to decode: the crash landed mid-write, and
			// appending to it would corrupt the next entry too.
			if json.Unmarshal(trimmed, &entry) != nil || err != nil {
				bad = trimmed
				badOffset = lineStart
				continue
			}
			if cp.Done(entry.Address) {
				absorb(entry.Txs)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dataset: read spool: %w", err)
		}
	}
	if bad == nil {
		return nil
	}
	if addr := partialSpoolAddress(bad); addr != "" && cp.Done(addr) {
		return fmt.Errorf("%w: checkpointed entry for %s is undecodable", ErrSpoolCorrupt, addr)
	}
	// Drop the torn tail so the next append starts on a line boundary.
	if err := os.Truncate(path, badOffset); err != nil {
		return fmt.Errorf("dataset: truncate torn spool tail: %w", err)
	}
	pm().spoolRecoveries.Inc()
	return nil
}

// partialSpoolAddress pulls the address field out of a possibly
// truncated spool line. The encoder always writes address first, so any
// tear long enough to matter still yields it; an empty result means the
// tear landed inside the address itself.
func partialSpoolAddress(line []byte) string {
	const key = `"address":"`
	i := bytes.Index(line, []byte(key))
	if i < 0 {
		return ""
	}
	rest := line[i+len(key):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return string(rest[:j])
}

func strings0x(a ethtypes.Address) string {
	text, _ := a.MarshalText()
	return string(text)
}
