package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"ensdropcatch/internal/ethtypes"
)

// Validation errors.
var (
	ErrNoDomains     = errors.New("dataset: no domains")
	ErrBadEventOrder = errors.New("dataset: events out of order")
	ErrOrphanEvent   = errors.New("dataset: event without registration")
	ErrBadWindow     = errors.New("dataset: invalid observation window")
	ErrBadTx         = errors.New("dataset: malformed transaction")
)

// Validate checks structural invariants the analysis pipeline relies on.
// Load calls it implicitly is NOT done (crawled datasets may legitimately
// contain oddities worth inspecting); tools call it explicitly and decide
// how to handle violations. It returns all violations joined, or nil.
func (ds *Dataset) Validate() error {
	var errs []error
	if len(ds.Domains) == 0 {
		errs = append(errs, ErrNoDomains)
	}
	if ds.End <= ds.Start {
		errs = append(errs, fmt.Errorf("%w: [%d, %d)", ErrBadWindow, ds.Start, ds.End))
	}

	// Iterate domains in sorted label-hash order: the violations are
	// joined into one error message (and truncated past 50), so map
	// order would make both the text and the surviving subset differ
	// run to run.
	hashes := make([]ethtypes.Hash, 0, len(ds.Domains))
	for lh := range ds.Domains {
		hashes = append(hashes, lh)
	}
	sort.Slice(hashes, func(i, j int) bool { return bytes.Compare(hashes[i][:], hashes[j][:]) < 0 })
	for _, lh := range hashes {
		d := ds.Domains[lh]
		if d.LabelHash != lh {
			errs = append(errs, fmt.Errorf("dataset: domain %s keyed under %s", d.LabelHash, lh))
		}
		var prevTS int64
		registered := false
		for i, e := range d.Events {
			if e.Timestamp < prevTS {
				errs = append(errs, fmt.Errorf("%w: %s event %d", ErrBadEventOrder, d.Name(), i))
				break
			}
			prevTS = e.Timestamp
			switch e.Type {
			case EvRegistered:
				registered = true
				if e.Registrant.IsZero() {
					errs = append(errs, fmt.Errorf("dataset: %s registration %d has no registrant", d.Name(), i))
				}
				if e.Expiry <= e.Timestamp {
					errs = append(errs, fmt.Errorf("dataset: %s registration %d expiry %d before registration %d",
						d.Name(), i, e.Expiry, e.Timestamp))
				}
			case EvRenewed, EvTransferred:
				if !registered {
					errs = append(errs, fmt.Errorf("%w: %s %s before any registration", ErrOrphanEvent, d.Name(), e.Type))
				}
			default:
				errs = append(errs, fmt.Errorf("dataset: %s unknown event type %q", d.Name(), e.Type))
			}
		}
		if !registered && len(d.Events) > 0 {
			errs = append(errs, fmt.Errorf("%w: %s has events but no registration", ErrOrphanEvent, d.Name()))
		}
		if len(errs) > 50 {
			errs = append(errs, errors.New("dataset: too many violations, truncated"))
			break
		}
	}

	for i, tx := range ds.Txs {
		if tx.Hash.IsZero() || tx.Timestamp == 0 {
			errs = append(errs, fmt.Errorf("%w: index %d", ErrBadTx, i))
			break // one representative is enough; Txs can be huge
		}
	}
	return errors.Join(errs...)
}
