package dataset

import (
	"fmt"
	"testing"

	"ensdropcatch/internal/ethtypes"
)

// indexFixture builds a small dataset with deliberate transaction placement
// for exercising the binary-searched accessors.
func indexFixture(t *testing.T) (*Dataset, ethtypes.Address, ethtypes.Address, ethtypes.Address) {
	t.Helper()
	ds := New(0, 100_000)
	a := ethtypes.DeriveAddress("idx-a")
	b := ethtypes.DeriveAddress("idx-b")
	c := ethtypes.DeriveAddress("idx-c")
	add := func(from, to ethtypes.Address, ts int64, failed bool) {
		h := ethtypes.HashData([]byte(fmt.Sprintf("idx-tx-%s-%s-%d-%v", from, to, ts, failed)))
		ds.Txs = append(ds.Txs, &Tx{Hash: h, Timestamp: ts, From: from, To: to, ValueWei: "1000000000000000000", Failed: failed})
	}
	add(a, b, 100, false)
	add(a, b, 200, false)
	add(a, b, 300, true) // failed: excluded from in/out indexes
	add(a, c, 150, false)
	add(c, b, 200, false) // timestamp tie with a->b@200
	add(b, a, 400, false)
	ds.Reindex()
	return ds, a, b, c
}

func TestIncomingOfWindowBoundaries(t *testing.T) {
	ds, a, b, c := indexFixture(t)
	_ = c
	// [from, to) is half-open: a tx at exactly `to` is excluded, at `from`
	// included.
	if got := len(ds.IncomingOf(b, 100, 200)); got != 1 {
		t.Errorf("[100,200) = %d txs, want 1", got)
	}
	if got := len(ds.IncomingOf(b, 100, 201)); got != 3 {
		t.Errorf("[100,201) = %d txs, want 3 (failed tx excluded)", got)
	}
	if got := len(ds.IncomingOf(b, 0, 100_000)); got != 3 {
		t.Errorf("full window = %d txs, want 3", got)
	}
	if got := len(ds.IncomingOf(b, 500, 600)); got != 0 {
		t.Errorf("empty window = %d txs", got)
	}
	if got := len(ds.IncomingOf(a, 400, 401)); got != 1 {
		t.Errorf("b->a at 400 = %d txs, want 1", got)
	}
	// Unknown address: no panic, empty result.
	if got := len(ds.IncomingOf(ethtypes.DeriveAddress("idx-nobody"), 0, 100_000)); got != 0 {
		t.Errorf("unknown addr = %d txs", got)
	}
}

func TestIncomingOfMatchesLinearScan(t *testing.T) {
	ds, _, b, _ := indexFixture(t)
	for from := int64(0); from <= 500; from += 50 {
		for to := from; to <= 500; to += 50 {
			var want int
			for _, tx := range ds.TxsOf(b) {
				if tx.To == b && tx.Timestamp >= from && tx.Timestamp < to && !tx.Failed {
					want++
				}
			}
			if got := len(ds.IncomingOf(b, from, to)); got != want {
				t.Fatalf("IncomingOf(b, %d, %d) = %d, linear scan says %d", from, to, got, want)
			}
		}
	}
}

func TestOutgoingTo(t *testing.T) {
	ds, a, b, c := indexFixture(t)
	ab := ds.OutgoingTo(a, b)
	if len(ab) != 2 {
		t.Fatalf("a->b = %d txs, want 2 (failed excluded)", len(ab))
	}
	if ab[0].Timestamp != 100 || ab[1].Timestamp != 200 {
		t.Errorf("a->b not in time order: %d, %d", ab[0].Timestamp, ab[1].Timestamp)
	}
	if got := len(ds.OutgoingTo(a, c)); got != 1 {
		t.Errorf("a->c = %d txs, want 1", got)
	}
	if got := len(ds.OutgoingTo(c, a)); got != 0 {
		t.Errorf("c->a = %d txs, want 0", got)
	}
}

func TestTxByHash(t *testing.T) {
	ds, _, _, _ := indexFixture(t)
	for _, tx := range ds.Txs {
		if got := ds.TxByHash(tx.Hash); got != tx {
			t.Fatalf("TxByHash(%s) = %v, want %v", tx.Hash, got, tx)
		}
	}
	if got := ds.TxByHash(ethtypes.HashData([]byte("missing"))); got != nil {
		t.Errorf("missing hash = %v, want nil", got)
	}
}

func TestValueEthCachedMatchesParse(t *testing.T) {
	tx := &Tx{ValueWei: "1234500000000000000"}
	uncached := tx.ValueEth() // no Reindex: parse path
	ds := New(0, 1000)
	ds.Txs = append(ds.Txs, tx)
	ds.Reindex()
	if cached := tx.ValueEth(); cached != uncached {
		t.Errorf("cached %v != parsed %v", cached, uncached)
	}
	if tx.ValueEth() != 1.2345 {
		t.Errorf("ValueEth = %v, want 1.2345", tx.ValueEth())
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	ds1, _, _, _ := indexFixture(t)
	ds2, _, _, _ := indexFixture(t)
	fp1 := ds1.Fingerprint()
	if fp2 := ds2.Fingerprint(); fp2 != fp1 {
		t.Fatalf("identical datasets fingerprint differently: %x vs %x", fp1, fp2)
	}
	if again := ds1.Fingerprint(); again != fp1 {
		t.Fatalf("fingerprint not idempotent: %x vs %x", fp1, again)
	}
	// Reads must not perturb it.
	for _, tx := range ds1.Txs {
		_ = tx.ValueEth()
	}
	ds1.IncomingOf(ds1.Txs[0].To, 0, 100_000)
	if got := ds1.Fingerprint(); got != fp1 {
		t.Fatalf("read-only access changed fingerprint")
	}
	// A single mutated field must change it.
	ds2.Txs[0].Timestamp++
	if got := ds2.Fingerprint(); got == fp1 {
		t.Fatal("mutation not detected")
	}
}
