package dataset

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/vfs"
	"ensdropcatch/internal/world"
)

// snapFixture runs one complete resumable Build (which ends by writing a
// spool snapshot covering the whole spool) and returns the resume dir
// plus everything needed to re-run and cross-check it.
type snapFixture struct {
	store    *subgraph.Store
	chainSrc *ChainSource
	market   *MarketEventsSource
	opts     BuildOptions
	dir      string
	wantTxs  map[ethtypes.Hash]bool
}

func newSnapFixture(t *testing.T) *snapFixture {
	t.Helper()
	res, err := world.Generate(world.DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	fx := &snapFixture{
		store:    subgraph.BuildIndex(res.Chain),
		chainSrc: &ChainSource{Chain: res.Chain, Labels: LabelsFromWorld(res)},
		market:   NewMarketEventsSource(res.OpenSea),
		dir:      t.TempDir(),
	}
	fx.opts = BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 2,
		ResumeDir: fx.dir, SpoolSnapshotEvery: 8}
	ds, err := fx.build(t)
	if err != nil {
		t.Fatal(err)
	}
	fx.wantTxs = map[ethtypes.Hash]bool{}
	for _, tx := range ds.Txs {
		fx.wantTxs[tx.Hash] = true
	}
	if _, err := os.Stat(filepath.Join(fx.dir, spoolSnapFile)); err != nil {
		t.Fatalf("completed crawl left no spool snapshot: %v", err)
	}
	return fx
}

func (fx *snapFixture) build(t *testing.T) (*Dataset, error) {
	t.Helper()
	return Build(context.Background(), &StoreSource{Store: fx.store}, fx.chainSrc, fx.market, fx.opts)
}

func (fx *snapFixture) checkConverged(t *testing.T, ds *Dataset) {
	t.Helper()
	if len(ds.Txs) != len(fx.wantTxs) {
		t.Fatalf("resumed build has %d txs, want %d", len(ds.Txs), len(fx.wantTxs))
	}
	for _, tx := range ds.Txs {
		if !fx.wantTxs[tx.Hash] {
			t.Fatalf("unexpected tx %s", tx.Hash)
		}
	}
}

// The snapshot's whole point: resume must not re-parse the spool prefix
// the snapshot covers. Corrupting a byte inside that prefix — damage
// that makes a full re-parse hard-fail with ErrSpoolCorrupt — must go
// unnoticed when the snapshot is present, and fail when it is absent.
func TestSnapshotResumeSkipsCoveredSpoolPrefix(t *testing.T) {
	fx := newSnapFixture(t)
	spoolPath := filepath.Join(fx.dir, spoolFile)
	spool, err := os.ReadFile(spoolPath)
	if err != nil {
		t.Fatal(err)
	}
	// Smash the first line's JSON without touching its newline (the
	// non-final-line corruption TestResumeRefusesCorruptMiddleLine
	// proves is a hard error on the full-parse path).
	smashed := append([]byte(nil), spool...)
	copy(smashed[1:5], "!!!!")
	if err := os.WriteFile(spoolPath, smashed, 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err := fx.build(t)
	if err != nil {
		t.Fatalf("snapshot-backed resume re-parsed the covered prefix: %v", err)
	}
	fx.checkConverged(t, ds)

	// Without the snapshot the same damage must hard-fail, proving the
	// pass above really did skip the prefix.
	if err := os.Remove(filepath.Join(fx.dir, spoolSnapFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.build(t); !errors.Is(err, ErrSpoolCorrupt) {
		t.Fatalf("err = %v, want ErrSpoolCorrupt once the snapshot is gone", err)
	}
}

// A torn snapshot (any truncation point) must never poison resume: the
// loader rejects it, resume falls back to the full spool re-parse, and
// the crawl still converges. Sweep every byte of a small snapshot, then
// stride across a real crawl's snapshot so cuts land in every section
// and alignment class.
func TestTornSnapshotAtEveryByteIsRejected(t *testing.T) {
	dir := t.TempDir()
	tinyPath := filepath.Join(dir, "tiny.snap")
	if err := writeSpoolSnapshot(vfs.OS, tinyPath, tinyDataset(t).Txs, 999, false); err != nil {
		t.Fatal(err)
	}
	tiny, err := os.ReadFile(tinyPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSpoolSnapshot(tinyPath); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
	cutPath := filepath.Join(dir, "cut.snap")
	t.Logf("sweeping %d truncation points", len(tiny))
	for cut := 0; cut < len(tiny); cut++ {
		if err := os.WriteFile(cutPath, tiny[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadSpoolSnapshot(cutPath); err == nil {
			t.Fatalf("snapshot cut at byte %d of %d loaded without error", cut, len(tiny))
		}
	}

	fx := newSnapFixture(t)
	full, err := os.ReadFile(filepath.Join(fx.dir, spoolSnapFile))
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, len(full) - 1, len(full) - len(snapFooter)}
	for cut := 7; cut < len(full); cut += 4999 {
		cuts = append(cuts, cut)
	}
	for _, cut := range cuts {
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadSpoolSnapshot(cutPath); err == nil {
			t.Fatalf("real snapshot cut at byte %d of %d loaded without error", cut, len(full))
		}
	}
}

func TestTornSnapshotFallsBackAndConverges(t *testing.T) {
	fx := newSnapFixture(t)
	reg := obs.NewRegistry()
	InitMetrics(reg)
	defer InitMetrics(nil)

	snapPath := filepath.Join(fx.dir, spoolSnapFile)
	full, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-columns: the classic torn-rename-less write footprint.
	if err := os.WriteFile(snapPath, full[:len(full)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err := fx.build(t)
	if err != nil {
		t.Fatalf("resume with torn snapshot failed: %v", err)
	}
	fx.checkConverged(t, ds)
	if got := pm().snapshotFallbacks.Value(); got == 0 {
		t.Error("fallback metric not incremented")
	}
	if got := pm().snapshotRestores.Value(); got != 0 {
		t.Errorf("torn snapshot counted as a restore (%d)", got)
	}
}

// A healthy snapshot-backed resume restores, converges, and counts as a
// restore; writeSpoolSnapshot/loadSpoolSnapshot round-trip exactly.
func TestSnapshotResumeConvergesAndCounts(t *testing.T) {
	fx := newSnapFixture(t)
	reg := obs.NewRegistry()
	InitMetrics(reg)
	defer InitMetrics(nil)

	ds, err := fx.build(t)
	if err != nil {
		t.Fatal(err)
	}
	fx.checkConverged(t, ds)
	if got := pm().snapshotRestores.Value(); got != 1 {
		t.Errorf("restores = %d, want 1", got)
	}
	if got := pm().snapshotFallbacks.Value(); got != 0 {
		t.Errorf("fallbacks = %d, want 0", got)
	}
}

func TestSpoolSnapshotRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	path := filepath.Join(t.TempDir(), "txspool.snap")
	if err := writeSpoolSnapshot(vfs.OS, path, ds.Txs, 12345, false); err != nil {
		t.Fatal(err)
	}
	txs, covered, err := loadSpoolSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if covered != 12345 {
		t.Errorf("covered = %d, want 12345", covered)
	}
	if len(txs) != len(ds.Txs) {
		t.Fatalf("%d txs, want %d", len(txs), len(ds.Txs))
	}
	want := map[ethtypes.Hash]*Tx{}
	for _, tx := range ds.Txs {
		want[tx.Hash] = tx
	}
	for _, tx := range txs {
		w := want[tx.Hash]
		if w == nil {
			t.Fatalf("unexpected tx %s", tx.Hash)
		}
		if tx.Block != w.Block || tx.Timestamp != w.Timestamp || tx.From != w.From ||
			tx.To != w.To || tx.ValueWei != w.ValueWei || tx.Failed != w.Failed || tx.Method != w.Method {
			t.Fatalf("tx %s fields diverge after round trip", tx.Hash)
		}
	}
}

// A snapshot claiming to cover more spool than exists (a stale snapshot
// next to a replaced spool) must be discarded, not trusted.
func TestSnapshotBeyondSpoolIsDiscarded(t *testing.T) {
	fx := newSnapFixture(t)
	reg := obs.NewRegistry()
	InitMetrics(reg)
	defer InitMetrics(nil)

	// Rewrite the snapshot with an offset past the spool's end.
	spoolPath := filepath.Join(fx.dir, spoolFile)
	fi, err := os.Stat(spoolPath)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(fx.dir, spoolSnapFile)
	txs, _, err := loadSpoolSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSpoolSnapshot(vfs.OS, snapPath, txs, fi.Size()+1000, false); err != nil {
		t.Fatal(err)
	}

	ds, err := fx.build(t)
	if err != nil {
		t.Fatalf("resume with stale snapshot failed: %v", err)
	}
	fx.checkConverged(t, ds)
	if got := pm().snapshotFallbacks.Value(); got == 0 {
		t.Error("stale snapshot not counted as a fallback")
	}
}

// The snapshot itself must round-trip byte-identically regardless of the
// order transactions were absorbed in — writeSpoolSnapshot sorts.
func TestSpoolSnapshotIsOrderInsensitive(t *testing.T) {
	ds := tinyDataset(t)
	shuffled := append([]*Tx(nil), ds.Txs...)
	for i, j := 0, len(shuffled)-1; i < j; i, j = i+1, j-1 {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.snap"), filepath.Join(dir, "b.snap")
	if err := writeSpoolSnapshot(vfs.OS, p1, ds.Txs, 7, false); err != nil {
		t.Fatal(err)
	}
	if err := writeSpoolSnapshot(vfs.OS, p2, shuffled, 7, false); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("snapshot bytes depend on absorb order")
	}
}
