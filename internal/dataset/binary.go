package dataset

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"ensdropcatch/internal/dataset/codec"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/vfs"
)

// Binary columnar snapshot (dataset.bin), the format behind
// FormatBinary and SaveSnapshot. Layout (all integers via the codec
// package: varints for values, little-endian fixed widths for framing):
//
//	magic "ENSDSB1\n" · version u16 · section count u8
//	5 × section: id u8 · row count u64 · payload length u64 · payload
//	footer "ENSDEND\n"
//
// Sections appear in a fixed order (meta, domains, txs, subdomains,
// market) and each payload stores its rows column-at-a-time
// (struct-of-arrays), so decoding fills contiguous slabs and Reindex
// walks near-contiguous memory instead of pointer-chasing millions of
// individually allocated rows. Row counts and payload lengths are
// declared up front and the decoder consumes every payload exactly, so
// truncating the file at any byte — or tampering with any count — fails
// decode by construction rather than silently shortening the dataset.
const binVersion = 1

var (
	binMagic  = []byte("ENSDSB1\n")
	binFooter = []byte("ENSDEND\n")
)

// Section identifiers, in their required file order.
const (
	secMeta uint8 = 1 + iota
	secDomains
	secTxs
	secSubdomains
	secMarket

	numSections = 5
)

func (ds *Dataset) saveBinary(fsys vfs.FS, path string, sync bool) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("dataset: mkdir: %w", err)
		}
	}
	return writeAtomic(fsys, path, sync, func(f vfs.File) error {
		return encodeDataset(f, ds)
	})
}

// encodeDataset writes the full snapshot onto f. Section payload
// lengths are not known until a section is written, so a placeholder is
// emitted, the payload flushed, and the true length patched in place
// with WriteAt — the codec writer's byte count doubles as the file
// offset because every byte goes through it.
func encodeDataset(f vfs.File, ds *Dataset) error {
	w := codec.NewWriter(f)
	w.Raw(binMagic)
	w.U16(binVersion)
	w.U8(numSections)

	domains := ds.sortedDomains()
	txs := ds.sortedTxs()
	subs := ds.sortedSubdomains()
	market := ds.sortedMarket()
	coin := sortedAddrs(ds.Coinbase)
	other := sortedAddrs(ds.OtherCustodial)

	section := func(id uint8, rows int, encode func()) error {
		w.U8(id)
		w.U64(uint64(rows))
		lenAt := w.Offset()
		w.U64(0) // payload length placeholder, patched below
		start := w.Offset()
		encode()
		if err := w.Flush(); err != nil {
			return fmt.Errorf("dataset: encode section %d: %w", id, err)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(w.Offset()-start))
		if _, err := f.WriteAt(buf[:], lenAt); err != nil {
			return fmt.Errorf("dataset: patch section %d length: %w", id, err)
		}
		return nil
	}

	if err := section(secMeta, len(coin)+len(other), func() {
		w.Varint(ds.Start)
		w.Varint(ds.End)
		w.Uvarint(uint64(len(coin)))
		for _, a := range coin {
			w.Raw(a[:])
		}
		w.Uvarint(uint64(len(other)))
		for _, a := range other {
			w.Raw(a[:])
		}
	}); err != nil {
		return err
	}
	if err := section(secDomains, len(domains), func() { encodeDomainColumns(w, domains) }); err != nil {
		return err
	}
	if err := section(secTxs, len(txs), func() { encodeTxColumns(w, txs) }); err != nil {
		return err
	}
	if err := section(secSubdomains, len(subs), func() { encodeSubdomainColumns(w, subs) }); err != nil {
		return err
	}
	if err := section(secMarket, len(market), func() { encodeMarketColumns(w, market) }); err != nil {
		return err
	}

	w.Raw(binFooter)
	return w.Flush()
}

func loadBinaryFile(path string) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	ds, err := decodeDataset(data)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	ds.Reindex()
	return ds, nil
}

func decodeDataset(data []byte) (*Dataset, error) {
	r := codec.NewReader(data)
	if magic := r.Raw(len(binMagic)); r.Err() != nil || !bytes.Equal(magic, binMagic) {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	v := r.U16()
	nsec := r.U8()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if v != binVersion {
		return nil, fmt.Errorf("dataset: snapshot version %d not supported (want %d)", v, binVersion)
	}
	if nsec != numSections {
		return nil, fmt.Errorf("%w: %d sections declared, want %d", ErrCorrupt, nsec, numSections)
	}

	ds := New(0, 0)
	for _, want := range []uint8{secMeta, secDomains, secTxs, secSubdomains, secMarket} {
		id := r.U8()
		rows := r.U64()
		plen := r.U64()
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: truncated section table", ErrCorrupt)
		}
		if id != want {
			return nil, fmt.Errorf("%w: section id %d where %d expected", ErrCorrupt, id, want)
		}
		payload := r.Raw(int(plen))
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: section %d payload truncated (declares %d bytes)", ErrCorrupt, id, plen)
		}
		// Every row occupies at least one payload byte in every section,
		// so a corrupted row count cannot drive a huge allocation.
		if rows > plen+1 {
			return nil, fmt.Errorf("%w: section %d declares %d rows in %d bytes", ErrCorrupt, id, rows, plen)
		}
		sr := codec.NewReader(payload)
		var derr error
		switch id {
		case secMeta:
			derr = decodeMeta(sr, int(rows), ds)
		case secDomains:
			derr = decodeDomainColumns(sr, int(rows), ds)
		case secTxs:
			var txs []Tx
			if txs, derr = decodeTxColumns(sr, int(rows)); derr == nil {
				ds.Txs = make([]*Tx, len(txs))
				for i := range txs {
					ds.Txs[i] = &txs[i]
				}
			}
		case secSubdomains:
			derr = decodeSubdomainColumns(sr, int(rows), ds)
		case secMarket:
			derr = decodeMarketColumns(sr, int(rows), ds)
		}
		if derr != nil {
			return nil, derr
		}
		if err := sr.Err(); err != nil {
			return nil, fmt.Errorf("%w: section %d: %v", ErrCorrupt, id, err)
		}
		if n := sr.Remaining(); n != 0 {
			return nil, fmt.Errorf("%w: section %d has %d undeclared trailing bytes", ErrCorrupt, id, n)
		}
	}

	if footer := r.Raw(len(binFooter)); r.Err() != nil || !bytes.Equal(footer, binFooter) {
		return nil, fmt.Errorf("%w: bad snapshot footer", ErrCorrupt)
	}
	if n := r.Remaining(); n != 0 {
		return nil, fmt.Errorf("%w: %d bytes after footer", ErrCorrupt, n)
	}
	return ds, nil
}

func decodeMeta(r *codec.Reader, rows int, ds *Dataset) error {
	ds.Start = r.Varint()
	ds.End = r.Varint()
	readAddrs := func(into map[ethtypes.Address]bool) int {
		n := r.Uvarint()
		count := 0
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			var a ethtypes.Address
			copy(a[:], r.Raw(len(a)))
			into[a] = true
			count++
		}
		return count
	}
	got := readAddrs(ds.Coinbase) + readAddrs(ds.OtherCustodial)
	if r.Err() == nil && got != rows {
		return &CountMismatchError{File: binFile + " (meta)", Got: got, Want: rows}
	}
	return nil
}

func encodeDomainColumns(w *codec.Writer, domains []*Domain) {
	total := 0
	for _, d := range domains {
		total += len(d.Events)
	}
	w.Uvarint(uint64(total))
	for _, d := range domains {
		w.Raw(d.LabelHash[:])
	}
	for _, d := range domains {
		w.String(d.Label)
	}
	for _, d := range domains {
		w.Uvarint(uint64(len(d.Events)))
	}
	var types stringTable
	for _, d := range domains {
		for i := range d.Events {
			types.add(string(d.Events[i].Type))
		}
	}
	types.write(w)
	for _, d := range domains {
		for i := range d.Events {
			w.Uvarint(types.add(string(d.Events[i].Type)))
		}
	}
	for _, d := range domains {
		for i := range d.Events {
			w.Raw(d.Events[i].Registrant[:])
		}
	}
	for _, d := range domains {
		for i := range d.Events {
			w.Varint(d.Events[i].Expiry)
		}
	}
	for _, d := range domains {
		for i := range d.Events {
			w.String(d.Events[i].CostWei)
		}
	}
	for _, d := range domains {
		for i := range d.Events {
			w.String(d.Events[i].PremiumWei)
		}
	}
	for _, d := range domains {
		for i := range d.Events {
			w.Varint(d.Events[i].Timestamp)
		}
	}
	for _, d := range domains {
		for i := range d.Events {
			w.Uvarint(d.Events[i].Block)
		}
	}
	for _, d := range domains {
		for i := range d.Events {
			w.Raw(d.Events[i].TxHash[:])
		}
	}
}

func decodeDomainColumns(r *codec.Reader, rows int, ds *Dataset) error {
	total := r.Uvarint()
	if r.Err() == nil && total > uint64(r.Remaining()) {
		return fmt.Errorf("%w: domain section declares %d events beyond its payload", ErrCorrupt, total)
	}
	doms := make([]Domain, rows)
	for i := range doms {
		copy(doms[i].LabelHash[:], r.Raw(len(doms[i].LabelHash)))
	}
	for i := range doms {
		doms[i].Label = r.String()
	}
	counts := make([]uint64, rows)
	var sum uint64
	for i := range counts {
		counts[i] = r.Uvarint()
		if r.Err() == nil && counts[i] > total-sum {
			return fmt.Errorf("%w: per-domain event counts exceed declared total %d", ErrCorrupt, total)
		}
		sum += counts[i]
	}
	if r.Err() == nil && sum != total {
		return fmt.Errorf("%w: per-domain event counts sum to %d, section declares %d", ErrCorrupt, sum, total)
	}
	types := readStringTable(r)
	events := make([]Event, total)
	for i := range events {
		id := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if id >= uint64(len(types)) {
			return fmt.Errorf("%w: event type id %d out of table range %d", ErrCorrupt, id, len(types))
		}
		events[i].Type = EventType(types[id])
	}
	for i := range events {
		copy(events[i].Registrant[:], r.Raw(len(events[i].Registrant)))
	}
	for i := range events {
		events[i].Expiry = r.Varint()
	}
	for i := range events {
		events[i].CostWei = r.String()
	}
	for i := range events {
		events[i].PremiumWei = r.String()
	}
	for i := range events {
		events[i].Timestamp = r.Varint()
	}
	for i := range events {
		events[i].Block = r.Uvarint()
	}
	for i := range events {
		copy(events[i].TxHash[:], r.Raw(len(events[i].TxHash)))
	}
	if r.Err() != nil {
		return nil // surfaced by the caller's sr.Err() check
	}
	off := uint64(0)
	for i := range doms {
		n := counts[i]
		doms[i].Events = events[off : off+n : off+n]
		off += n
		ds.Domains[doms[i].LabelHash] = &doms[i]
	}
	if len(ds.Domains) != rows {
		return fmt.Errorf("%w: %d domain rows collapse to %d distinct label hashes", ErrCorrupt, rows, len(ds.Domains))
	}
	return nil
}

// encodeTxColumns writes txs column-at-a-time. txs must already be in
// sortTxsForSave order: timestamps are delta-encoded against the
// previous row and a negative delta would not round-trip.
func encodeTxColumns(w *codec.Writer, txs []*Tx) {
	for _, tx := range txs {
		w.Raw(tx.Hash[:])
	}
	for _, tx := range txs {
		w.Uvarint(tx.Block)
	}
	var prev int64
	for i, tx := range txs {
		if i == 0 {
			w.Varint(tx.Timestamp)
		} else {
			w.Uvarint(uint64(tx.Timestamp - prev))
		}
		prev = tx.Timestamp
	}
	for _, tx := range txs {
		w.Raw(tx.From[:])
	}
	for _, tx := range txs {
		w.Raw(tx.To[:])
	}
	for _, tx := range txs {
		w.String(tx.ValueWei)
	}
	bits := make([]byte, (len(txs)+7)/8)
	for i, tx := range txs {
		if tx.Failed {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	w.Raw(bits)
	var methods stringTable
	for _, tx := range txs {
		methods.add(tx.Method)
	}
	methods.write(w)
	for _, tx := range txs {
		w.Uvarint(methods.add(tx.Method))
	}
}

// decodeTxColumns reads rows transactions into one contiguous slab —
// the struct-of-arrays payoff: Reindex's sorts and index builds walk
// sequential memory instead of scattered heap allocations.
func decodeTxColumns(r *codec.Reader, rows int) ([]Tx, error) {
	txs := make([]Tx, rows)
	for i := range txs {
		copy(txs[i].Hash[:], r.Raw(len(txs[i].Hash)))
	}
	for i := range txs {
		txs[i].Block = r.Uvarint()
	}
	var prev int64
	for i := range txs {
		if i == 0 {
			prev = r.Varint()
		} else {
			prev += int64(r.Uvarint())
		}
		txs[i].Timestamp = prev
	}
	for i := range txs {
		copy(txs[i].From[:], r.Raw(len(txs[i].From)))
	}
	for i := range txs {
		copy(txs[i].To[:], r.Raw(len(txs[i].To)))
	}
	for i := range txs {
		txs[i].ValueWei = r.String()
	}
	bits := r.Raw((rows + 7) / 8)
	if bits != nil {
		for i := range txs {
			if bits[i/8]&(1<<(i%8)) != 0 {
				txs[i].Failed = true
			}
		}
	}
	methods := readStringTable(r)
	for i := range txs {
		id := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if id >= uint64(len(methods)) {
			return nil, fmt.Errorf("%w: tx method id %d out of table range %d", ErrCorrupt, id, len(methods))
		}
		txs[i].Method = methods[id]
	}
	return txs, nil
}

func encodeSubdomainColumns(w *codec.Writer, subs []Subdomain) {
	for i := range subs {
		w.Raw(subs[i].Node[:])
	}
	for i := range subs {
		w.Raw(subs[i].Parent[:])
	}
	for i := range subs {
		w.String(subs[i].Name)
	}
	for i := range subs {
		w.String(subs[i].Owner)
	}
	for i := range subs {
		w.Varint(subs[i].Created)
	}
}

func decodeSubdomainColumns(r *codec.Reader, rows int, ds *Dataset) error {
	subs := make([]Subdomain, rows)
	for i := range subs {
		copy(subs[i].Node[:], r.Raw(len(subs[i].Node)))
	}
	for i := range subs {
		copy(subs[i].Parent[:], r.Raw(len(subs[i].Parent)))
	}
	for i := range subs {
		subs[i].Name = r.String()
	}
	for i := range subs {
		subs[i].Owner = r.String()
	}
	for i := range subs {
		subs[i].Created = r.Varint()
	}
	ds.Subdomains = subs
	return nil
}

// encodeMarketColumns writes the flattened market events. events must
// already be in sortedMarket order: timestamps are delta-encoded, and
// the decoder rebuilds the per-token lists by appending in file order,
// which reproduces the per-token time order the fingerprint hashes.
func encodeMarketColumns(w *codec.Writer, events []MarketEvent) {
	var kinds stringTable
	for i := range events {
		kinds.add(string(events[i].Kind))
	}
	kinds.write(w)
	for i := range events {
		w.Uvarint(kinds.add(string(events[i].Kind)))
	}
	for i := range events {
		w.Raw(events[i].TokenID[:])
	}
	for i := range events {
		w.String(events[i].Seller)
	}
	for i := range events {
		w.String(events[i].Buyer)
	}
	for i := range events {
		w.F64(events[i].PriceUSD)
	}
	var prev int64
	for i := range events {
		if i == 0 {
			w.Varint(events[i].Timestamp)
		} else {
			w.Uvarint(uint64(events[i].Timestamp - prev))
		}
		prev = events[i].Timestamp
	}
}

func decodeMarketColumns(r *codec.Reader, rows int, ds *Dataset) error {
	kinds := readStringTable(r)
	events := make([]MarketEvent, rows)
	for i := range events {
		id := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if id >= uint64(len(kinds)) {
			return fmt.Errorf("%w: market kind id %d out of table range %d", ErrCorrupt, id, len(kinds))
		}
		events[i].Kind = MarketEventKind(kinds[id])
	}
	for i := range events {
		copy(events[i].TokenID[:], r.Raw(len(events[i].TokenID)))
	}
	for i := range events {
		events[i].Seller = r.String()
	}
	for i := range events {
		events[i].Buyer = r.String()
	}
	for i := range events {
		events[i].PriceUSD = r.F64()
	}
	var prev int64
	for i := range events {
		if i == 0 {
			prev = r.Varint()
		} else {
			prev += int64(r.Uvarint())
		}
		events[i].Timestamp = prev
	}
	if r.Err() != nil {
		return nil // surfaced by the caller's sr.Err() check
	}
	for i := range events {
		ds.Market[events[i].TokenID] = append(ds.Market[events[i].TokenID], events[i])
	}
	return nil
}

// stringTable dictionary-encodes repetitive string columns (event
// types, tx methods, market kinds): the distinct values are written
// once, rows reference them by id. Ids are assigned in first-occurrence
// order, which is deterministic because every encoder walks rows in
// their persisted total order.
type stringTable struct {
	ids  map[string]uint64
	vals []string
}

// add returns the id for s, assigning the next one on first sight.
func (t *stringTable) add(s string) uint64 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]uint64)
	}
	id := uint64(len(t.vals))
	t.ids[s] = id
	t.vals = append(t.vals, s)
	return id
}

func (t *stringTable) write(w *codec.Writer) {
	w.Uvarint(uint64(len(t.vals)))
	for _, s := range t.vals {
		w.String(s)
	}
}

func readStringTable(r *codec.Reader) []string {
	n := r.Uvarint()
	// Cap the allocation at one entry per remaining byte; a lying count
	// then fails on a short read instead of driving a huge make.
	capHint := n
	if rem := uint64(r.Remaining()); capHint > rem {
		capHint = rem
	}
	vals := make([]string, 0, capHint)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		vals = append(vals, r.String())
	}
	return vals
}
