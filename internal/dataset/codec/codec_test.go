package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// writeSample encodes one of every primitive and returns the bytes.
func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(0)
	w.Uvarint(300)
	w.Uvarint(math.MaxUint64)
	w.Varint(-1)
	w.Varint(1 << 40)
	w.U8(0xab)
	w.U16(0xbeef)
	w.U64(0x1122334455667788)
	w.F64(3.5)
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.Raw([]byte{1, 2, 3})
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.String("gold.eth")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Offset() != int64(buf.Len()) {
		t.Fatalf("Offset = %d, buffer has %d bytes", w.Offset(), buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	r := NewReader(writeSample(t))
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d, want 300", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint = %d, want MaxUint64", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("Varint = %d, want -1", got)
	}
	if got := r.Varint(); got != 1<<40 {
		t.Errorf("Varint = %d, want 1<<40", got)
	}
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %x", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %x", got)
	}
	if got := r.U64(); got != 0x1122334455667788 {
		t.Errorf("U64 = %x", got)
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if got := r.Bytes(); string(got) != "hello" {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %q", got)
	}
	if got := r.String(); got != "gold.eth" {
		t.Errorf("String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

// Every truncation point of the sample must surface as an error from
// some read — never as silently zero values with a nil Err.
func TestTruncatedAtEveryByteErrors(t *testing.T) {
	full := writeSample(t)
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		// Drain with the same sequence as the round-trip test.
		r.Uvarint()
		r.Uvarint()
		r.Uvarint()
		r.Varint()
		r.Varint()
		r.U8()
		r.U16()
		r.U64()
		r.F64()
		r.F64()
		r.Bool()
		r.Bool()
		r.Raw(3)
		r.Bytes()
		r.Bytes()
		_ = r.String() // draining for the error, not the value
		if r.Err() == nil {
			t.Fatalf("cut at byte %d of %d: no error after draining", cut, len(full))
		}
		if !errors.Is(r.Err(), ErrTruncated) && !errors.Is(r.Err(), ErrMalformed) {
			t.Fatalf("cut at byte %d: unexpected error %v", cut, r.Err())
		}
	}
}

// The first error latches: later reads return zero values and do not
// overwrite it.
func TestErrorsAreSticky(t *testing.T) {
	r := NewReader([]byte{0x80}) // unterminated varint
	if r.Uvarint() != 0 || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", r.Err())
	}
	if got := r.U64(); got != 0 {
		t.Errorf("post-error U64 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("sticky error replaced by %v", r.Err())
	}
}

// A length prefix pointing past the end of the buffer must be rejected
// before any allocation sized from it.
func TestBytesRejectsLyingLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(1 << 40) // claims a terabyte follows
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(buf.Bytes())
	if got := r.Bytes(); got != nil {
		t.Errorf("Bytes = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", r.Err())
	}
}

// A varint wider than 64 bits is malformed, not truncated.
func TestVarintOverflowIsMalformed(t *testing.T) {
	over := bytes.Repeat([]byte{0xff}, 10)
	over = append(over, 0x02)
	r := NewReader(over)
	r.Uvarint()
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Errorf("Err = %v, want ErrMalformed", r.Err())
	}
}

// Bool bytes other than 0/1 are malformed — they would otherwise decode
// differently than they were encoded, breaking byte-stability.
func TestBoolRejectsNonCanonicalBytes(t *testing.T) {
	r := NewReader([]byte{2})
	if r.Bool() {
		t.Error("malformed Bool returned true")
	}
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Errorf("Err = %v, want ErrMalformed", r.Err())
	}
}

// A failed writer stays failed and Flush reports the original error.
func TestWriterErrorsAreSticky(t *testing.T) {
	w := NewWriter(failWriter{})
	for i := 0; i < 1<<21; i++ { // overflow the internal buffer
		w.U64(uint64(i))
	}
	if w.Err() == nil {
		t.Fatal("writer never surfaced the sink error")
	}
	before := w.Err()
	w.String("after")
	if w.Err() != before {
		t.Error("sticky writer error replaced")
	}
	if w.Flush() != before {
		t.Error("Flush did not report the sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errors.New("sink failed")
}
