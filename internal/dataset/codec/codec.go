// Package codec implements the length-prefixed varint / fixed-width
// binary primitives under the dataset's columnar snapshot format: an
// error-sticky Writer that counts every byte it emits (so section tables
// can declare exact payload lengths) and a bounds-checked Reader over an
// in-memory buffer that turns any short read into ErrTruncated instead
// of garbage. Integers use varint/uvarint encoding, fixed-width values
// little-endian, and byte strings a uvarint length prefix.
//
// The primitives are deliberately dumb: framing (magic headers, section
// tables, footers) belongs to the caller, which is what lets the dataset
// snapshot declare row counts up front and detect truncation by
// construction.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// Errors reported by Reader. Both are sticky: the first failure latches
// and every later call returns the zero value.
var (
	// ErrTruncated marks input that ended before a declared value.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrMalformed marks input that is long enough but undecodable
	// (varint overflow, length prefix past the buffer end).
	ErrMalformed = errors.New("codec: malformed input")
)

// Writer encodes primitives onto an io.Writer through an internal
// buffer. Errors are sticky: after the first write failure every call is
// a no-op and Err/Flush report the failure, so encode paths can run
// check-free and test once at the end.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter returns a Writer buffering onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1 << 20)}
}

// Offset returns the total bytes written so far (including bytes still
// in the buffer) — the would-be file offset of the next value.
func (w *Writer) Offset() int64 { return w.n }

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the first error seen.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	w.err = err
}

// Uvarint writes v in unsigned varint encoding.
func (w *Writer) Uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.write(buf[:binary.PutUvarint(buf[:], v)])
}

// Varint writes v in zig-zag varint encoding.
func (w *Writer) Varint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	w.write(buf[:binary.PutVarint(buf[:], v)])
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U16 writes a fixed-width little-endian uint16.
func (w *Writer) U16(v uint16) {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	w.write(buf[:])
}

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.write(buf[:])
}

// F64 writes the IEEE-754 bits of v, fixed-width little-endian.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes v as one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Raw writes p with no length prefix (fixed-width columns).
func (w *Writer) Raw(p []byte) { w.write(p) }

// Bytes writes p with a uvarint length prefix.
func (w *Writer) Bytes(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.write(p)
}

// String writes s with a uvarint length prefix, without copying.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	n, err := w.w.WriteString(s)
	w.n += int64(n)
	w.err = err
}

// Reader decodes primitives from an in-memory buffer. Every read is
// bounds-checked; the first failure latches (ErrTruncated or
// ErrMalformed) and all later calls return zero values, so decode paths
// can run check-free and test Err once per row or section.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader aliases b; callers must
// not mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Offset returns how many bytes have been consumed.
func (r *Reader) Offset() int { return r.off }

// Remaining returns how many bytes are left.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n == 0 {
		r.fail(ErrTruncated)
		return 0
	}
	if n < 0 {
		r.fail(ErrMalformed)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n == 0 {
		r.fail(ErrTruncated)
		return 0
	}
	if n < 0 {
		r.fail(ErrMalformed)
		return 0
	}
	r.off += n
	return v
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U16 reads a fixed-width little-endian uint16.
func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// F64 reads a fixed-width IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte as a boolean; any byte other than 0 or 1 is
// malformed.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(ErrMalformed)
		return false
	}
}

// Raw reads exactly n bytes with no length prefix. The slice aliases the
// underlying buffer.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Bytes reads a uvarint length prefix and that many bytes. The slice
// aliases the underlying buffer.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	// A length past the buffer end means the prefix itself is lying —
	// guard before converting so a corrupt prefix cannot drive a
	// multi-gigabyte take.
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	return r.take(int(n))
}

// String reads a uvarint length prefix and that many bytes as a string.
func (r *Reader) String() string { return string(r.Bytes()) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}
