package dataset

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ensdropcatch/internal/crawler"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/obs"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/trace"
	"ensdropcatch/internal/vfs"
)

// RegistrationSource pages registration entities (the subgraph client, or
// an in-process store adapter).
type RegistrationSource interface {
	PageAll(ctx context.Context, collection string, fields []string) ([]subgraph.Entity, error)
}

// TxSource lists transactions per address and serves the custodial labels
// (the Etherscan client, or an in-process chain adapter).
type TxSource interface {
	TxList(ctx context.Context, addr ethtypes.Address) ([]etherscan.TxRecord, error)
	FetchLabels(ctx context.Context) (etherscan.Labels, error)
}

// MarketSource serves marketplace events per token.
type MarketSource interface {
	EventsForToken(ctx context.Context, tokenID ethtypes.Hash) ([]opensea.Event, error)
}

// BuildOptions tunes the assembly.
type BuildOptions struct {
	// Start/End clamp the observation window; zero values keep the
	// events' natural extent.
	Start, End int64
	// TxWorkers is the concurrency of the per-address transaction crawl.
	TxWorkers int
	// MarketWorkers is the concurrency of the marketplace crawl.
	MarketWorkers int
	// ResumeDir, when set, makes the transaction crawl resumable: results
	// spool to this directory and completed addresses are checkpointed,
	// so an interrupted crawl restarts where it stopped.
	ResumeDir string
	// FsyncCheckpoint syncs the spool and checkpoint to disk at every
	// completed address, making resume state survive power loss rather
	// than just process death. Opt-in: it costs two fsyncs per address.
	FsyncCheckpoint bool
	// SpoolSnapshotEvery writes a binary spool snapshot every that many
	// completed addresses, so resume replays only the spool tail instead
	// of re-parsing the whole JSONL spool. 0 defaults to 256; negative
	// disables snapshots.
	SpoolSnapshotEvery int
	// FS routes the resumable crawl's spool, snapshot, and checkpoint
	// writes through an injectable filesystem (nil uses vfs.OS). Chaos
	// tests pass a vfs.Faulty to exercise crash recovery.
	FS vfs.FS
	// Logger receives progress; nil disables logging.
	Logger *slog.Logger
	// Obs receives stage timers, item counters, and crawl-progress
	// gauges; nil uses obs.Default.
	Obs *obs.Registry
	// ProgressEvery is the interval between progress summaries (with
	// ETA) during the transaction crawl; <= 0 defaults to 10s.
	ProgressEvery time.Duration
}

func (o *BuildOptions) defaults() {
	if o.TxWorkers <= 0 {
		o.TxWorkers = 4
	}
	if o.MarketWorkers <= 0 {
		o.MarketWorkers = 4
	}
	if o.SpoolSnapshotEvery == 0 {
		o.SpoolSnapshotEvery = 256
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.Obs == nil {
		o.Obs = obs.Default
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 10 * time.Second
	}
}

// buildMetrics instruments the assembly stages (the paper's Figure 1
// pipeline: subgraph history, labels, transaction crawl, marketplace).
type buildMetrics struct {
	stageSeconds *obs.GaugeVec
	stageItems   *obs.CounterVec
	txDone       *obs.Gauge
	txTotal      *obs.Gauge
}

func newBuildMetrics(reg *obs.Registry) *buildMetrics {
	return &buildMetrics{
		stageSeconds: reg.GaugeVec("dataset_stage_seconds",
			"Wall-clock seconds the last run spent in each build stage.", "stage"),
		stageItems: reg.CounterVec("dataset_stage_items_total",
			"Items produced by each build stage.", "stage"),
		txDone: reg.Gauge("dataset_tx_addresses_done",
			"Addresses whose transaction lists have been crawled."),
		txTotal: reg.Gauge("dataset_tx_addresses_total",
			"Addresses the transaction crawl must cover."),
	}
}

// stage records a completed stage's duration and item count, and logs it.
func (bm *buildMetrics) stage(logger *slog.Logger, name string, items int, start time.Time) {
	elapsed := obs.WallSince(start)
	bm.stageSeconds.With(name).Set(elapsed.Seconds())
	bm.stageItems.With(name).Add(uint64(items))
	logger.Info("dataset: stage complete", "stage", name, "items", items,
		"elapsed", elapsed.Round(time.Millisecond))
}

// eventFields are the subgraph fields the assembly needs.
var eventFields = []string{"type", "label", "labelName", "registrant", "newOwner", "expiryDate", "costWei", "premiumWei", "timestamp", "blockNumber", "txHash"}

// Build assembles a Dataset from the three sources, reproducing the
// paper's collection pipeline: registration history first, then the
// transaction lists of every address that ever held a name, the custodial
// labels, and marketplace events for names registered more than once.
func Build(ctx context.Context, regs RegistrationSource, txs TxSource, market MarketSource, opts BuildOptions) (*Dataset, error) {
	opts.defaults()
	bm := newBuildMetrics(opts.Obs)
	ds := New(opts.Start, opts.End)

	// 1. Registration event history.
	stageStart := obs.NowWall()
	rows, err := regs.PageAll(ctx, subgraph.ColEvents, eventFields)
	if err != nil {
		return nil, fmt.Errorf("dataset: crawl registration events: %w", err)
	}
	for _, row := range rows {
		if err := ds.addEventRow(row); err != nil {
			return nil, fmt.Errorf("dataset: event row %q: %w", row.ID(), err)
		}
	}
	bm.stage(opts.Logger, "events", len(rows), stageStart)

	// 1b. Subdomain records.
	stageStart = obs.NowWall()
	subRows, err := regs.PageAll(ctx, subgraph.ColSubdomains, []string{"parent", "name", "owner", "createdAt"})
	if err != nil {
		return nil, fmt.Errorf("dataset: crawl subdomains: %w", err)
	}
	for _, row := range subRows {
		node, err := ethtypes.ParseHash(row.ID())
		if err != nil {
			return nil, fmt.Errorf("dataset: subdomain id %q: %w", row.ID(), err)
		}
		parent, err := ethtypes.ParseHash(str(row, "parent"))
		if err != nil {
			return nil, fmt.Errorf("dataset: subdomain parent: %w", err)
		}
		created, err := integer(row, "createdAt")
		if err != nil {
			return nil, fmt.Errorf("dataset: subdomain %q: %w", row.ID(), err)
		}
		ds.Subdomains = append(ds.Subdomains, Subdomain{
			Node:    node,
			Parent:  parent,
			Name:    str(row, "name"),
			Owner:   str(row, "owner"),
			Created: created,
		})
	}
	bm.stage(opts.Logger, "subdomains", len(subRows), stageStart)

	// 2. Custodial labels.
	stageStart = obs.NowWall()
	labels, err := txs.FetchLabels(ctx)
	if err != nil {
		return nil, fmt.Errorf("dataset: fetch labels: %w", err)
	}
	for _, s := range labels.Coinbase {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return nil, fmt.Errorf("dataset: coinbase label %q: %w", s, err)
		}
		ds.Coinbase[a] = true
	}
	for _, s := range labels.OtherCustodial {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return nil, fmt.Errorf("dataset: custodial label %q: %w", s, err)
		}
		ds.OtherCustodial[a] = true
	}
	bm.stage(opts.Logger, "labels", len(labels.Coinbase)+len(labels.OtherCustodial), stageStart)

	// 3. Transaction lists for every registrant address.
	stageStart = obs.NowWall()
	addrSet := map[ethtypes.Address]bool{}
	for _, d := range ds.Domains {
		for _, e := range d.Events {
			if !e.Registrant.IsZero() {
				addrSet[e.Registrant] = true
			}
		}
	}
	addrs := make([]ethtypes.Address, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return lessAddr(addrs[i], addrs[j]) })

	// The transaction crawl is the long, rate-limited stage, so it gets
	// live progress: a done/total gauge pair and periodic ETA summaries.
	var done atomic.Int64
	bm.txTotal.Set(float64(len(addrs)))
	bm.txDone.Set(0)
	onAddressDone := func() { bm.txDone.Set(float64(done.Add(1))) }
	stopProgress := startProgressLoop(ctx, opts, &done, len(addrs), stageStart)

	var mu sync.Mutex
	if opts.ResumeDir != "" {
		err = crawlTxsResumable(ctx, opts.ResumeDir, txs, addrs, opts.TxWorkers, ds, onAddressDone, opts.FsyncCheckpoint, opts.SpoolSnapshotEvery, opts.FS)
	} else {
		seen := map[ethtypes.Hash]bool{}
		err = crawler.ForEach(ctx, opts.TxWorkers, addrs, func(ctx context.Context, addr ethtypes.Address) error {
			// One span per crawled address groups the etherscan call and
			// its retries into a single trace keyed to the address.
			ctx, sp := trace.Start(ctx, "crawl.address")
			if sp != nil {
				sp.Annotate("address", addr.Hex())
			}
			records, err := txs.TxList(ctx, addr)
			sp.EndErr(err)
			if err != nil {
				return fmt.Errorf("txlist %s: %w", addr, err)
			}
			defer onAddressDone()
			mu.Lock()
			defer mu.Unlock()
			for i := range records {
				tx, err := fromRecord(&records[i])
				if err != nil {
					return err
				}
				if seen[tx.Hash] {
					continue
				}
				seen[tx.Hash] = true
				ds.Txs = append(ds.Txs, tx)
			}
			return nil
		})
	}
	stopProgress()
	if err != nil {
		return nil, fmt.Errorf("dataset: crawl transactions: %w", err)
	}
	opts.Logger.Info("dataset: transactions crawled", "addresses", len(addrs), "txs", len(ds.Txs))
	bm.stage(opts.Logger, "transactions", len(ds.Txs), stageStart)

	// 4. Marketplace events for names with more than one registration.
	stageStart = obs.NowWall()
	var tokens []ethtypes.Hash
	for lh, d := range ds.Domains {
		if len(d.Registrations()) >= 2 {
			tokens = append(tokens, lh)
		}
	}
	sort.Slice(tokens, func(i, j int) bool { return lessHash(tokens[i], tokens[j]) })
	err = crawler.ForEach(ctx, opts.MarketWorkers, tokens, func(ctx context.Context, token ethtypes.Hash) error {
		events, err := market.EventsForToken(ctx, token)
		if err != nil {
			return fmt.Errorf("market %s: %w", token, err)
		}
		if len(events) == 0 {
			return nil
		}
		converted := make([]MarketEvent, 0, len(events))
		for _, e := range events {
			converted = append(converted, MarketEvent{
				Kind:      MarketEventKind(e.EventType),
				TokenID:   token,
				Seller:    e.Seller,
				Buyer:     e.Buyer,
				PriceUSD:  e.PriceUSD,
				Timestamp: e.Timestamp,
			})
		}
		mu.Lock()
		ds.Market[token] = converted
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dataset: crawl marketplace: %w", err)
	}
	bm.stage(opts.Logger, "market", len(tokens), stageStart)

	ds.Reindex()
	ds.inferWindow()
	return ds, nil
}

// startProgressLoop emits periodic done/total/ETA summaries through the
// options logger until the returned stop function is called.
func startProgressLoop(ctx context.Context, opts BuildOptions, done *atomic.Int64, total int, start time.Time) func() {
	if total == 0 {
		return func() {}
	}
	progressCtx, cancel := context.WithCancel(ctx)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(opts.ProgressEvery)
		defer t.Stop()
		for {
			select {
			case <-progressCtx.Done():
				return
			case <-t.C:
				d := done.Load()
				elapsed := obs.WallSince(start)
				eta := "unknown"
				if d > 0 {
					eta = (time.Duration(float64(elapsed) * float64(int64(total)-d) / float64(d))).Round(time.Second).String()
				}
				opts.Logger.Info("dataset: tx crawl progress",
					"addresses_done", d,
					"addresses_total", total,
					"elapsed", elapsed.Round(time.Second),
					"eta", eta)
			}
		}
	}()
	return func() {
		cancel()
		<-finished
	}
}

// inferWindow fills an unspecified observation window from the data: the
// earliest event/transaction timestamp and one past the latest.
func (ds *Dataset) inferWindow() {
	if ds.Start != 0 && ds.End != 0 {
		return
	}
	var lo, hi int64
	observe := func(ts int64) {
		if ts == 0 {
			return
		}
		if lo == 0 || ts < lo {
			lo = ts
		}
		if ts > hi {
			hi = ts
		}
	}
	for _, d := range ds.Domains {
		for _, e := range d.Events {
			observe(e.Timestamp)
		}
	}
	for _, tx := range ds.Txs {
		observe(tx.Timestamp)
	}
	if ds.Start == 0 {
		ds.Start = lo
	}
	if ds.End == 0 {
		ds.End = hi + 1
	}
}

func (ds *Dataset) addEventRow(row subgraph.Entity) error {
	labelHex, _ := row["label"].(string)
	lh, err := ethtypes.ParseHash(labelHex)
	if err != nil {
		return fmt.Errorf("bad label hash: %w", err)
	}
	d := ds.Domains[lh]
	if d == nil {
		d = &Domain{LabelHash: lh}
		ds.Domains[lh] = d
	}
	if name, ok := row["labelName"].(string); ok && name != "" {
		d.Label = name
	}
	ev := Event{Type: EventType(str(row, "type"))}
	switch ev.Type {
	case EvRegistered, EvRenewed, EvTransferred:
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	// Rows may carry both fields: registrant is the authoritative holder
	// for attribution, newOwner only a fallback (e.g. transfer rows that
	// never name a registrant). Overwriting with newOwner would misattribute
	// who dropcatches.
	if s := str(row, "registrant"); s != "" {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return fmt.Errorf("bad registrant: %w", err)
		}
		ev.Registrant = a
	}
	if s := str(row, "newOwner"); s != "" && ev.Registrant.IsZero() {
		a, err := ethtypes.ParseAddress(s)
		if err != nil {
			return fmt.Errorf("bad newOwner: %w", err)
		}
		ev.Registrant = a
	}
	if ev.Expiry, err = integer(row, "expiryDate"); err != nil {
		return err
	}
	ev.CostWei = str(row, "costWei")
	ev.PremiumWei = str(row, "premiumWei")
	if ev.Timestamp, err = integer(row, "timestamp"); err != nil {
		return err
	}
	block, err := integer(row, "blockNumber")
	if err != nil {
		return err
	}
	ev.Block = uint64(block)
	if s := str(row, "txHash"); s != "" {
		h, err := ethtypes.ParseHash(s)
		if err != nil {
			return fmt.Errorf("bad txHash: %w", err)
		}
		ev.TxHash = h
	}
	d.Events = append(d.Events, ev)
	return nil
}

func str(row subgraph.Entity, key string) string {
	s, _ := row[key].(string)
	return s
}

// integer reads a numeric entity field. Absent fields and empty strings
// read as 0 (events legitimately omit fields like expiryDate); anything
// present but unparseable is a hard error — the old behavior of
// swallowing it turned malformed expiry/timestamp/block values into
// silent zeros that corrupted expiry and dropcatch detection downstream.
func integer(row subgraph.Entity, key string) (int64, error) {
	switch v := row[key].(type) {
	case nil:
		return 0, nil
	case int64:
		return v, nil
	case float64: // JSON round trip turns numbers into float64
		return int64(v), nil
	case string:
		if v == "" {
			return 0, nil
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			pm().parseErrors.Inc()
			return 0, fmt.Errorf("bad %s %q: %w", key, v, err)
		}
		return n, nil
	default:
		pm().parseErrors.Inc()
		return 0, fmt.Errorf("bad %s: unsupported type %T", key, v)
	}
}

func fromRecord(r *etherscan.TxRecord) (*Tx, error) {
	h, err := ethtypes.ParseHash(r.Hash)
	if err != nil {
		return nil, fmt.Errorf("bad tx hash %q: %w", r.Hash, err)
	}
	from, err := ethtypes.ParseAddress(r.From)
	if err != nil {
		return nil, fmt.Errorf("bad from: %w", err)
	}
	to, err := ethtypes.ParseAddress(r.To)
	if err != nil {
		return nil, fmt.Errorf("bad to: %w", err)
	}
	block, err := strconv.ParseUint(r.BlockNumber, 10, 64)
	if err != nil {
		pm().parseErrors.Inc()
		return nil, fmt.Errorf("bad block number %q in tx %s: %w", r.BlockNumber, r.Hash, err)
	}
	ts, err := strconv.ParseInt(r.TimeStamp, 10, 64)
	if err != nil {
		pm().parseErrors.Inc()
		return nil, fmt.Errorf("bad timestamp %q in tx %s: %w", r.TimeStamp, r.Hash, err)
	}
	return &Tx{
		Hash:      h,
		Block:     block,
		Timestamp: ts,
		From:      from,
		To:        to,
		ValueWei:  r.Value,
		Failed:    r.IsError == "1",
		Method:    r.Method,
	}, nil
}

func lessAddr(a, b ethtypes.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func lessHash(a, b ethtypes.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
