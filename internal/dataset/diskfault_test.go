package dataset

import (
	"context"
	"errors"
	"testing"

	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/vfs"
	"ensdropcatch/internal/world"
)

// Disk-fault acceptance suite: every injected filesystem fault either
// surfaces as a typed error or is healed by resume — never silent
// corruption.

// grow returns a copy-ish second generation with one more transaction,
// so the two generations have different section counts and a
// mixed-generation directory is detectable by Load's cross-checks.
func grow(t *testing.T, ds *Dataset) *Dataset {
	t.Helper()
	extra := *ds.Txs[0]
	for i := range extra.Hash {
		extra.Hash[i] ^= 0xff
	}
	ds.Txs = append(ds.Txs, &extra)
	ds.Reindex()
	return ds
}

// A rename fault during Save surfaces typed and leaves the previous
// generation loadable and intact.
func TestSaveRenameFaultPreservesPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	gen1 := tinyDataset(t)
	if err := gen1.Save(dir); err != nil {
		t.Fatal(err)
	}
	want := mustLoad(t, dir).Fingerprint()

	gen2 := grow(t, tinyDataset(t))
	fsys := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 5, RenameErrRate: 1})
	err := gen2.Save(dir, WithFS(fsys))
	if !errors.Is(err, vfs.ErrRenameFailed) {
		t.Fatalf("save error = %v, want ErrRenameFailed", err)
	}
	if got := mustLoad(t, dir).Fingerprint(); got != want {
		t.Fatal("previous generation damaged by failed save")
	}
}

// An ENOSPC write fault during Save surfaces typed (down to the real
// errno) and never commits the half-written temp file.
func TestSaveWriteFaultSurfacesTyped(t *testing.T) {
	dir := t.TempDir()
	gen1 := tinyDataset(t)
	if err := gen1.Save(dir); err != nil {
		t.Fatal(err)
	}
	want := mustLoad(t, dir).Fingerprint()

	for _, cfg := range []vfs.FaultConfig{
		{Seed: 9, WriteErrRate: 1},
		{Seed: 9, ShortWriteRate: 1},
	} {
		gen2 := grow(t, tinyDataset(t))
		err := gen2.Save(dir, WithFS(vfs.NewFaulty(nil, cfg)))
		if !errors.Is(err, vfs.ErrDiskFull) {
			t.Fatalf("save error = %v, want ErrDiskFull", err)
		}
		if got := mustLoad(t, dir).Fingerprint(); got != want {
			t.Fatal("previous generation damaged by failed save")
		}
	}
}

// A crash between the section renames and the meta.json commit leaves a
// mixed-generation directory that Load *detects* (count cross-check)
// rather than silently serving shortened data.
func TestSaveCrashBeforeMetaCommitIsDetectable(t *testing.T) {
	dir := t.TempDir()
	if err := tinyDataset(t).Save(dir); err != nil {
		t.Fatal(err)
	}
	gen2 := grow(t, tinyDataset(t))
	fsys := vfs.NewFaulty(nil, vfs.FaultConfig{CrashAfter: map[string]int{"dataset.save.pre-meta": 1}})
	if err := gen2.Save(dir, WithFS(fsys)); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("save error = %v, want ErrCrashed", err)
	}
	// New sections, old meta: the counts disagree, so Load must refuse.
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mixed-generation load error = %v, want ErrCorrupt", err)
	}
	// The repair path is a clean re-save.
	if err := gen2.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("re-save did not repair: %v", err)
	}
}

// A crash before the very first section's commit rename leaves the
// previous generation fully intact.
func TestSaveCrashBeforeFirstRenameLeavesOldDataset(t *testing.T) {
	dir := t.TempDir()
	if err := tinyDataset(t).Save(dir); err != nil {
		t.Fatal(err)
	}
	want := mustLoad(t, dir).Fingerprint()
	gen2 := grow(t, tinyDataset(t))
	fsys := vfs.NewFaulty(nil, vfs.FaultConfig{CrashAfter: map[string]int{"dataset.writeAtomic.pre-rename": 1}})
	if err := gen2.Save(dir, WithFS(fsys)); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("save error = %v, want ErrCrashed", err)
	}
	if got := mustLoad(t, dir).Fingerprint(); got != want {
		t.Fatal("previous generation damaged by crashed save")
	}
}

func mustLoad(t *testing.T, dir string) *Dataset {
	t.Helper()
	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// buildWorld generates a small deterministic world plus the sources a
// resumable build needs.
func buildWorld(t *testing.T, domains int) (*StoreSource, *ChainSource, *MarketEventsSource, BuildOptions) {
	t.Helper()
	res, err := world.Generate(world.DefaultConfig(domains))
	if err != nil {
		t.Fatal(err)
	}
	store := subgraph.BuildIndex(res.Chain)
	chainSrc := &ChainSource{Chain: res.Chain, Labels: LabelsFromWorld(res)}
	market := NewMarketEventsSource(res.OpenSea)
	opts := BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 1}
	return &StoreSource{Store: store}, chainSrc, market, opts
}

// A short write tears the spool's final line mid-crawl; the next resume
// truncates the torn tail and re-crawls the lost address — the
// "healed by resume" half of the disk-fault contract.
func TestResumableCrawlHealsTornSpoolWrite(t *testing.T) {
	store, chainSrc, market, opts := buildWorld(t, 120)
	dir := t.TempDir()
	opts.ResumeDir = dir
	opts.SpoolSnapshotEvery = -1

	opts.FS = vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 2, ShortWriteRate: 1})
	_, err := Build(context.Background(), store, chainSrc, market, opts)
	if !errors.Is(err, vfs.ErrDiskFull) {
		t.Fatalf("faulted build error = %v, want ErrDiskFull", err)
	}

	// "Reboot": same directory, healthy disk.
	opts.FS = nil
	ds, err := Build(context.Background(), store, chainSrc, market, opts)
	if err != nil {
		t.Fatalf("resume after torn write: %v", err)
	}

	fresh := opts
	fresh.ResumeDir = ""
	want, err := Build(context.Background(), store, chainSrc, market, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Txs) != len(want.Txs) {
		t.Fatalf("healed crawl has %d txs, fresh crawl %d", len(ds.Txs), len(want.Txs))
	}
}

// A crash in the spooled-but-not-checkpointed window loses nothing: the
// address is simply re-crawled on resume.
func TestResumableCrawlHealsCrashBeforeCheckpointMark(t *testing.T) {
	store, chainSrc, market, opts := buildWorld(t, 120)
	dir := t.TempDir()
	opts.ResumeDir = dir

	opts.FS = vfs.NewFaulty(nil, vfs.FaultConfig{CrashAfter: map[string]int{"dataset.spool.pre-mark": 30}})
	_, err := Build(context.Background(), store, chainSrc, market, opts)
	if !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("crashed build error = %v, want ErrCrashed", err)
	}

	opts.FS = nil
	ds, err := Build(context.Background(), store, chainSrc, market, opts)
	if err != nil {
		t.Fatalf("resume after crash: %v", err)
	}
	fresh := opts
	fresh.ResumeDir = ""
	want, err := Build(context.Background(), store, chainSrc, market, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Txs) != len(want.Txs) {
		t.Fatalf("healed crawl has %d txs, fresh crawl %d", len(ds.Txs), len(want.Txs))
	}
}

// Fsync faults under FsyncCheckpoint surface typed instead of silently
// skipping durability.
func TestResumableCrawlSyncFaultSurfacesTyped(t *testing.T) {
	store, chainSrc, market, opts := buildWorld(t, 60)
	opts.ResumeDir = t.TempDir()
	opts.FsyncCheckpoint = true
	opts.FS = vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 4, SyncErrRate: 1})
	_, err := Build(context.Background(), store, chainSrc, market, opts)
	if !errors.Is(err, vfs.ErrSyncFailed) {
		t.Fatalf("build error = %v, want ErrSyncFailed", err)
	}
}
