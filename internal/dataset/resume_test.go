package dataset

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// flakySource wraps a TxSource and fails after a fixed number of TxList
// calls, simulating a crawl interrupted mid-way.
type flakySource struct {
	inner     TxSource
	calls     atomic.Int64
	failAfter int64
}

var errInjected = errors.New("injected crawl failure")

func (f *flakySource) TxList(ctx context.Context, addr ethtypes.Address) ([]etherscan.TxRecord, error) {
	if f.calls.Add(1) > f.failAfter {
		return nil, errInjected
	}
	return f.inner.TxList(ctx, addr)
}

func (f *flakySource) FetchLabels(ctx context.Context) (etherscan.Labels, error) {
	return f.inner.FetchLabels(ctx)
}

func TestResumableCrawlRecoversFromFailure(t *testing.T) {
	res, err := world.Generate(world.DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	store := subgraph.BuildIndex(res.Chain)
	chainSrc := &ChainSource{Chain: res.Chain, Labels: LabelsFromWorld(res)}
	market := NewMarketEventsSource(res.OpenSea)
	dir := t.TempDir()

	// First attempt: dies after 120 addresses.
	flaky := &flakySource{inner: chainSrc, failAfter: 120}
	_, err = Build(context.Background(),
		&StoreSource{Store: store}, flaky, market,
		BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 4, ResumeDir: dir})
	if !errors.Is(err, errInjected) {
		t.Fatalf("first build err = %v, want injected failure", err)
	}

	// Second attempt resumes and completes; the source only sees the
	// remaining addresses.
	counting := &flakySource{inner: chainSrc, failAfter: 1 << 60}
	ds, err := Build(context.Background(),
		&StoreSource{Store: store}, counting, market,
		BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 4, ResumeDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: a fresh non-resumable build.
	want, err := Build(context.Background(),
		&StoreSource{Store: store}, chainSrc, market,
		BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Txs) != len(want.Txs) {
		t.Errorf("resumed crawl has %d txs, fresh crawl %d", len(ds.Txs), len(want.Txs))
	}
	// The resumed run must have skipped already-checkpointed addresses.
	addrSet := map[ethtypes.Address]bool{}
	for _, d := range ds.Domains {
		for _, e := range d.Events {
			if !e.Registrant.IsZero() {
				addrSet[e.Registrant] = true
			}
		}
	}
	if got := counting.calls.Load(); got >= int64(len(addrSet)) {
		t.Errorf("resume re-crawled everything: %d calls for %d addresses", got, len(addrSet))
	}
}

func TestResumableCrawlIdempotentWhenComplete(t *testing.T) {
	res, err := world.Generate(world.DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	store := subgraph.BuildIndex(res.Chain)
	chainSrc := &ChainSource{Chain: res.Chain, Labels: LabelsFromWorld(res)}
	market := NewMarketEventsSource(res.OpenSea)
	dir := t.TempDir()
	opts := BuildOptions{Start: res.Config.Start, End: res.Config.End, TxWorkers: 4, ResumeDir: dir}

	first, err := Build(context.Background(), &StoreSource{Store: store}, chainSrc, market, opts)
	if err != nil {
		t.Fatal(err)
	}
	counting := &flakySource{inner: chainSrc, failAfter: 1 << 60}
	second, err := Build(context.Background(), &StoreSource{Store: store}, counting, market, opts)
	if err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != 0 {
		t.Errorf("complete checkpoint still crawled %d addresses", counting.calls.Load())
	}
	if len(first.Txs) != len(second.Txs) {
		t.Errorf("tx counts differ: %d vs %d", len(first.Txs), len(second.Txs))
	}
}
