// Package dataset assembles and stores the study dataset the paper builds
// in §3: for every ENS name, its full registration event history from the
// subgraph; for every relevant address, its transaction list from the
// Etherscan API; the custodial address labels; and marketplace events for
// re-registered names. The same assembly code runs against in-process
// sources (fast, for benchmarks) or the HTTP substrates (exercising the
// crawl pipeline end to end).
package dataset

import (
	"bytes"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/par"
)

// EventType enumerates registration event kinds.
type EventType string

// Registration event kinds (the subgraph's vocabulary).
const (
	EvRegistered  EventType = "NameRegistered"
	EvRenewed     EventType = "NameRenewed"
	EvTransferred EventType = "NameTransferred"
)

// Event is one registration event of a domain.
type Event struct {
	Type       EventType        `json:"type"`
	Registrant ethtypes.Address `json:"registrant,omitempty"` // registered-by / transferred-to
	Expiry     int64            `json:"expiry,omitempty"`
	CostWei    string           `json:"costWei,omitempty"`
	PremiumWei string           `json:"premiumWei,omitempty"`
	Timestamp  int64            `json:"timestamp"`
	Block      uint64           `json:"block"`
	TxHash     ethtypes.Hash    `json:"txHash"`
}

// Domain is the assembled per-name record.
type Domain struct {
	LabelHash ethtypes.Hash `json:"labelHash"`
	// Label is the plaintext label, or "" when the subgraph could not
	// recover it (the paper's ~34K unrecoverable names).
	Label  string  `json:"label,omitempty"`
	Events []Event `json:"events"`
}

// Name returns "<label>.eth", or the label hash when unrecoverable.
func (d *Domain) Name() string {
	if d.Label == "" {
		return d.LabelHash.Hex()
	}
	return d.Label + ".eth"
}

// Registrations returns only the NameRegistered events, in time order.
func (d *Domain) Registrations() []Event {
	var out []Event
	for _, e := range d.Events {
		if e.Type == EvRegistered {
			out = append(out, e)
		}
	}
	return out
}

// FinalExpiry returns the expiry in force after the last event before
// cutoff (renewals extend it), or 0 if the domain has no events by then.
func (d *Domain) FinalExpiry(cutoff int64) int64 {
	var expiry int64
	for _, e := range d.Events {
		if e.Timestamp >= cutoff {
			break
		}
		if e.Expiry != 0 {
			expiry = e.Expiry
		}
	}
	return expiry
}

// Tx is one crawled blockchain transaction.
type Tx struct {
	Hash      ethtypes.Hash    `json:"hash"`
	Block     uint64           `json:"block"`
	Timestamp int64            `json:"timestamp"`
	From      ethtypes.Address `json:"from"`
	To        ethtypes.Address `json:"to"`
	ValueWei  string           `json:"valueWei"`
	Failed    bool             `json:"failed,omitempty"`
	Method    string           `json:"method,omitempty"`

	// valueEth caches the parsed ValueWei (filled by Reindex); the USD
	// conversion runs once per (tx, analysis) pair and the decimal parse
	// dominated it.
	valueEth    float64
	valueCached bool
}

// ValueEth converts the wei string to a float64 amount of ether.
func (t *Tx) ValueEth() float64 {
	if t.valueCached {
		return t.valueEth
	}
	return parseWeiEth(t.ValueWei)
}

func parseWeiEth(s string) float64 {
	// Parse the decimal wei string without big.Int for speed; values fit
	// comfortably in float64 precision needs of the analysis.
	var v float64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		v = v*10 + float64(c-'0')
	}
	return v / 1e18
}

// MarketEventKind enumerates marketplace event kinds.
type MarketEventKind string

// Marketplace event kinds.
const (
	MarketListing MarketEventKind = "listing"
	MarketSale    MarketEventKind = "sale"
)

// MarketEvent is one OpenSea event for an ENS token.
type MarketEvent struct {
	Kind      MarketEventKind `json:"kind"`
	TokenID   ethtypes.Hash   `json:"tokenId"`
	Seller    string          `json:"seller"`
	Buyer     string          `json:"buyer,omitempty"`
	PriceUSD  float64         `json:"priceUsd"`
	Timestamp int64           `json:"timestamp"`
}

// Subdomain is one registry subnode record (pay.gold.eth).
type Subdomain struct {
	Node    ethtypes.Hash `json:"node"`
	Parent  ethtypes.Hash `json:"parent"`
	Name    string        `json:"name,omitempty"` // "" when unrecoverable
	Owner   string        `json:"owner"`
	Created int64         `json:"created"`
}

// Dataset is the fully assembled study dataset.
type Dataset struct {
	// Window is the observation window [Start, End).
	Start, End int64

	// Domains by label hash.
	Domains map[ethtypes.Hash]*Domain
	// Subdomains collected alongside (the paper gathered 846,752).
	Subdomains []Subdomain
	// Txs is every crawled transaction, deduplicated, in chain order.
	Txs []*Tx

	// Coinbase and OtherCustodial are the labeled custodial senders.
	Coinbase       map[ethtypes.Address]bool
	OtherCustodial map[ethtypes.Address]bool

	// Market holds marketplace events per token.
	Market map[ethtypes.Hash][]MarketEvent

	// Derived indexes (built by Reindex).
	byLabel  map[string]ethtypes.Hash
	txByAddr map[ethtypes.Address][]*Tx
	// inByAddr holds each address's successful incoming transactions in
	// timestamp order, so IncomingOf can binary-search its window.
	inByAddr map[ethtypes.Address][]*Tx
	// outByAddr holds each address's successful outgoing transactions
	// sorted by (recipient, timestamp), so OutgoingTo can binary-search
	// the contiguous per-recipient run.
	outByAddr map[ethtypes.Address][]*Tx
	txByHash  map[ethtypes.Hash]*Tx
}

// New returns an empty dataset for the given window.
func New(start, end int64) *Dataset {
	return &Dataset{
		Start:          start,
		End:            end,
		Domains:        make(map[ethtypes.Hash]*Domain),
		Coinbase:       make(map[ethtypes.Address]bool),
		OtherCustodial: make(map[ethtypes.Address]bool),
		Market:         make(map[ethtypes.Hash][]MarketEvent),
	}
}

// Reindex rebuilds derived indexes after Domains/Txs mutate. It sorts each
// domain's events and the global transaction list by timestamp, builds the
// per-address incoming/outgoing and by-hash indexes, and caches every
// transaction's parsed ether value. All indexes are read-only afterwards
// and safe for concurrent readers; the slices returned by the accessors
// alias them and must not be mutated.
func (ds *Dataset) Reindex() {
	pool := par.New("dataset_reindex", 0)

	ds.byLabel = make(map[string]ethtypes.Hash, len(ds.Domains))
	domains := make([]*Domain, 0, len(ds.Domains))
	for lh, d := range ds.Domains {
		//lint:allow maporder domains only fans out the per-domain event sorts below; each element is sorted independently and no order reaches output
		domains = append(domains, d)
		if d.Label != "" {
			ds.byLabel[strings.ToLower(d.Label)] = lh
		}
	}
	par.ForEach(pool, len(domains), func(i int) {
		d := domains[i]
		sort.SliceStable(d.Events, func(x, y int) bool { return d.Events[x].Timestamp < d.Events[y].Timestamp })
	})

	// (Timestamp, Hash) is a strict total order over the deduplicated
	// transaction list: the crawl appends per-address results in worker
	// completion order, and a timestamp-only stable sort would preserve
	// that arbitrary order among equal-timestamp transactions, making the
	// dataset (and its fingerprint) vary run to run.
	sort.Slice(ds.Txs, func(i, j int) bool {
		if ds.Txs[i].Timestamp != ds.Txs[j].Timestamp {
			return ds.Txs[i].Timestamp < ds.Txs[j].Timestamp
		}
		return bytes.Compare(ds.Txs[i].Hash[:], ds.Txs[j].Hash[:]) < 0
	})
	par.ForEach(pool, len(ds.Txs), func(i int) {
		tx := ds.Txs[i]
		tx.valueEth = parseWeiEth(tx.ValueWei)
		tx.valueCached = true
	})

	ds.txByAddr = make(map[ethtypes.Address][]*Tx)
	ds.inByAddr = make(map[ethtypes.Address][]*Tx)
	ds.outByAddr = make(map[ethtypes.Address][]*Tx)
	ds.txByHash = make(map[ethtypes.Hash]*Tx, len(ds.Txs))
	for _, tx := range ds.Txs {
		ds.txByAddr[tx.From] = append(ds.txByAddr[tx.From], tx)
		if tx.To != tx.From {
			ds.txByAddr[tx.To] = append(ds.txByAddr[tx.To], tx)
		}
		ds.txByHash[tx.Hash] = tx
		if !tx.Failed {
			ds.inByAddr[tx.To] = append(ds.inByAddr[tx.To], tx)
			ds.outByAddr[tx.From] = append(ds.outByAddr[tx.From], tx)
		}
	}
	// inByAddr inherits the global timestamp order from the append pass;
	// outByAddr needs the (recipient, timestamp) order. The stable sort by
	// recipient alone preserves the timestamp order within each run, and
	// the per-address sorts are independent, so they fan out freely.
	outAddrs := make([]ethtypes.Address, 0, len(ds.outByAddr))
	for a := range ds.outByAddr {
		//lint:allow maporder outAddrs only fans out the per-address sorts below; each list is sorted independently and no order reaches output
		outAddrs = append(outAddrs, a)
	}
	par.ForEach(pool, len(outAddrs), func(i int) {
		list := ds.outByAddr[outAddrs[i]]
		sort.SliceStable(list, func(x, y int) bool {
			return bytes.Compare(list[x].To[:], list[y].To[:]) < 0
		})
	})
}

// ByLabel looks a domain up by its plaintext label.
func (ds *Dataset) ByLabel(label string) (*Domain, bool) {
	lh, ok := ds.byLabel[strings.ToLower(strings.TrimSuffix(label, ".eth"))]
	if !ok {
		return nil, false
	}
	return ds.Domains[lh], true
}

// TxsOf returns the transactions involving addr, in time order.
func (ds *Dataset) TxsOf(addr ethtypes.Address) []*Tx {
	return ds.txByAddr[addr]
}

// IncomingAll returns every successful transaction received by addr, in
// time order. The slice aliases the index; callers must not mutate it.
func (ds *Dataset) IncomingAll(addr ethtypes.Address) []*Tx {
	return ds.inByAddr[addr]
}

// IncomingOf returns the successful transactions received by addr in
// [from, to), in time order, by binary-searching the per-address index —
// O(log n + k) instead of a scan over the address's full history. The
// slice aliases the index; callers must not mutate it.
func (ds *Dataset) IncomingOf(addr ethtypes.Address, from, to int64) []*Tx {
	list := ds.inByAddr[addr]
	lo := sort.Search(len(list), func(i int) bool { return list[i].Timestamp >= from })
	hi := lo + sort.Search(len(list[lo:]), func(i int) bool { return list[lo+i].Timestamp >= to })
	return list[lo:hi]
}

// OutgoingTo returns from's successful payments to to, in time order,
// by binary-searching the (recipient, timestamp)-sorted outgoing index.
// The slice aliases the index; callers must not mutate it.
func (ds *Dataset) OutgoingTo(from, to ethtypes.Address) []*Tx {
	list := ds.outByAddr[from]
	lo := sort.Search(len(list), func(i int) bool { return bytes.Compare(list[i].To[:], to[:]) >= 0 })
	hi := lo + sort.Search(len(list[lo:]), func(i int) bool { return list[lo+i].To != to })
	return list[lo:hi]
}

// TxByHash returns the transaction with the given hash, or nil.
func (ds *Dataset) TxByHash(h ethtypes.Hash) *Tx {
	return ds.txByHash[h]
}

// IsCustodial reports whether addr belongs to a non-Coinbase custodial
// service (the class the loss analysis filters out).
func (ds *Dataset) IsCustodial(addr ethtypes.Address) bool {
	return ds.OtherCustodial[addr]
}

// IsCoinbase reports whether addr is a Coinbase hot wallet.
func (ds *Dataset) IsCoinbase(addr ethtypes.Address) bool {
	return ds.Coinbase[addr]
}

// Fingerprint returns a deterministic FNV-1a checksum of the dataset's
// logical content: the window, every domain's events, every transaction,
// the custodial labels, and the marketplace events. Map iteration is
// normalized by sorting keys, so the value depends only on content — two
// datasets with equal content fingerprint identically regardless of
// construction order. Derived indexes and caches are excluded, so an
// analysis that only reads cannot change the fingerprint; the benchmark
// harness uses this to assert analyses never mutate the shared dataset.
func (ds *Dataset) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	boolean := func(b bool) {
		if b {
			u64(1)
		} else {
			u64(0)
		}
	}

	i64(ds.Start)
	i64(ds.End)

	labelHashes := make([]ethtypes.Hash, 0, len(ds.Domains))
	for lh := range ds.Domains {
		labelHashes = append(labelHashes, lh)
	}
	sort.Slice(labelHashes, func(i, j int) bool {
		return bytes.Compare(labelHashes[i][:], labelHashes[j][:]) < 0
	})
	for _, lh := range labelHashes {
		d := ds.Domains[lh]
		h.Write(lh[:])
		str(d.Label)
		u64(uint64(len(d.Events)))
		for i := range d.Events {
			e := &d.Events[i]
			str(string(e.Type))
			h.Write(e.Registrant[:])
			i64(e.Expiry)
			str(e.CostWei)
			str(e.PremiumWei)
			i64(e.Timestamp)
			u64(e.Block)
			h.Write(e.TxHash[:])
		}
	}

	u64(uint64(len(ds.Txs)))
	for _, tx := range ds.Txs {
		h.Write(tx.Hash[:])
		u64(tx.Block)
		i64(tx.Timestamp)
		h.Write(tx.From[:])
		h.Write(tx.To[:])
		str(tx.ValueWei)
		boolean(tx.Failed)
		str(tx.Method)
	}

	for _, m := range []map[ethtypes.Address]bool{ds.Coinbase, ds.OtherCustodial} {
		addrs := make([]ethtypes.Address, 0, len(m))
		for a := range m {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return bytes.Compare(addrs[i][:], addrs[j][:]) < 0 })
		u64(uint64(len(addrs)))
		for _, a := range addrs {
			h.Write(a[:])
		}
	}

	u64(uint64(len(ds.Subdomains)))
	for i := range ds.Subdomains {
		s := &ds.Subdomains[i]
		h.Write(s.Node[:])
		h.Write(s.Parent[:])
		str(s.Name)
		str(s.Owner)
		i64(s.Created)
	}

	tokens := make([]ethtypes.Hash, 0, len(ds.Market))
	for tok := range ds.Market {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool { return bytes.Compare(tokens[i][:], tokens[j][:]) < 0 })
	for _, tok := range tokens {
		h.Write(tok[:])
		evs := ds.Market[tok]
		u64(uint64(len(evs)))
		for i := range evs {
			e := &evs[i]
			str(string(e.Kind))
			h.Write(e.TokenID[:])
			str(e.Seller)
			str(e.Buyer)
			u64(math.Float64bits(e.PriceUSD))
			i64(e.Timestamp)
		}
	}
	return h.Sum64()
}
