// Package dataset assembles and stores the study dataset the paper builds
// in §3: for every ENS name, its full registration event history from the
// subgraph; for every relevant address, its transaction list from the
// Etherscan API; the custodial address labels; and marketplace events for
// re-registered names. The same assembly code runs against in-process
// sources (fast, for benchmarks) or the HTTP substrates (exercising the
// crawl pipeline end to end).
package dataset

import (
	"sort"
	"strings"

	"ensdropcatch/internal/ethtypes"
)

// EventType enumerates registration event kinds.
type EventType string

// Registration event kinds (the subgraph's vocabulary).
const (
	EvRegistered  EventType = "NameRegistered"
	EvRenewed     EventType = "NameRenewed"
	EvTransferred EventType = "NameTransferred"
)

// Event is one registration event of a domain.
type Event struct {
	Type       EventType        `json:"type"`
	Registrant ethtypes.Address `json:"registrant,omitempty"` // registered-by / transferred-to
	Expiry     int64            `json:"expiry,omitempty"`
	CostWei    string           `json:"costWei,omitempty"`
	PremiumWei string           `json:"premiumWei,omitempty"`
	Timestamp  int64            `json:"timestamp"`
	Block      uint64           `json:"block"`
	TxHash     ethtypes.Hash    `json:"txHash"`
}

// Domain is the assembled per-name record.
type Domain struct {
	LabelHash ethtypes.Hash `json:"labelHash"`
	// Label is the plaintext label, or "" when the subgraph could not
	// recover it (the paper's ~34K unrecoverable names).
	Label  string  `json:"label,omitempty"`
	Events []Event `json:"events"`
}

// Name returns "<label>.eth", or the label hash when unrecoverable.
func (d *Domain) Name() string {
	if d.Label == "" {
		return d.LabelHash.Hex()
	}
	return d.Label + ".eth"
}

// Registrations returns only the NameRegistered events, in time order.
func (d *Domain) Registrations() []Event {
	var out []Event
	for _, e := range d.Events {
		if e.Type == EvRegistered {
			out = append(out, e)
		}
	}
	return out
}

// FinalExpiry returns the expiry in force after the last event before
// cutoff (renewals extend it), or 0 if the domain has no events by then.
func (d *Domain) FinalExpiry(cutoff int64) int64 {
	var expiry int64
	for _, e := range d.Events {
		if e.Timestamp >= cutoff {
			break
		}
		if e.Expiry != 0 {
			expiry = e.Expiry
		}
	}
	return expiry
}

// Tx is one crawled blockchain transaction.
type Tx struct {
	Hash      ethtypes.Hash    `json:"hash"`
	Block     uint64           `json:"block"`
	Timestamp int64            `json:"timestamp"`
	From      ethtypes.Address `json:"from"`
	To        ethtypes.Address `json:"to"`
	ValueWei  string           `json:"valueWei"`
	Failed    bool             `json:"failed,omitempty"`
	Method    string           `json:"method,omitempty"`
}

// ValueEth converts the wei string to a float64 amount of ether.
func (t *Tx) ValueEth() float64 {
	// Parse the decimal wei string without big.Int for speed; values fit
	// comfortably in float64 precision needs of the analysis.
	var v float64
	for _, c := range t.ValueWei {
		if c < '0' || c > '9' {
			return 0
		}
		v = v*10 + float64(c-'0')
	}
	return v / 1e18
}

// MarketEventKind enumerates marketplace event kinds.
type MarketEventKind string

// Marketplace event kinds.
const (
	MarketListing MarketEventKind = "listing"
	MarketSale    MarketEventKind = "sale"
)

// MarketEvent is one OpenSea event for an ENS token.
type MarketEvent struct {
	Kind      MarketEventKind `json:"kind"`
	TokenID   ethtypes.Hash   `json:"tokenId"`
	Seller    string          `json:"seller"`
	Buyer     string          `json:"buyer,omitempty"`
	PriceUSD  float64         `json:"priceUsd"`
	Timestamp int64           `json:"timestamp"`
}

// Subdomain is one registry subnode record (pay.gold.eth).
type Subdomain struct {
	Node    ethtypes.Hash `json:"node"`
	Parent  ethtypes.Hash `json:"parent"`
	Name    string        `json:"name,omitempty"` // "" when unrecoverable
	Owner   string        `json:"owner"`
	Created int64         `json:"created"`
}

// Dataset is the fully assembled study dataset.
type Dataset struct {
	// Window is the observation window [Start, End).
	Start, End int64

	// Domains by label hash.
	Domains map[ethtypes.Hash]*Domain
	// Subdomains collected alongside (the paper gathered 846,752).
	Subdomains []Subdomain
	// Txs is every crawled transaction, deduplicated, in chain order.
	Txs []*Tx

	// Coinbase and OtherCustodial are the labeled custodial senders.
	Coinbase       map[ethtypes.Address]bool
	OtherCustodial map[ethtypes.Address]bool

	// Market holds marketplace events per token.
	Market map[ethtypes.Hash][]MarketEvent

	// Derived indexes (built by Reindex).
	byLabel  map[string]ethtypes.Hash
	txByAddr map[ethtypes.Address][]*Tx
}

// New returns an empty dataset for the given window.
func New(start, end int64) *Dataset {
	return &Dataset{
		Start:          start,
		End:            end,
		Domains:        make(map[ethtypes.Hash]*Domain),
		Coinbase:       make(map[ethtypes.Address]bool),
		OtherCustodial: make(map[ethtypes.Address]bool),
		Market:         make(map[ethtypes.Hash][]MarketEvent),
	}
}

// Reindex rebuilds derived indexes after Domains/Txs mutate. It sorts each
// domain's events and the global transaction list by timestamp.
func (ds *Dataset) Reindex() {
	ds.byLabel = make(map[string]ethtypes.Hash, len(ds.Domains))
	for lh, d := range ds.Domains {
		sort.SliceStable(d.Events, func(i, j int) bool { return d.Events[i].Timestamp < d.Events[j].Timestamp })
		if d.Label != "" {
			ds.byLabel[strings.ToLower(d.Label)] = lh
		}
	}
	sort.SliceStable(ds.Txs, func(i, j int) bool { return ds.Txs[i].Timestamp < ds.Txs[j].Timestamp })
	ds.txByAddr = make(map[ethtypes.Address][]*Tx)
	for _, tx := range ds.Txs {
		ds.txByAddr[tx.From] = append(ds.txByAddr[tx.From], tx)
		if tx.To != tx.From {
			ds.txByAddr[tx.To] = append(ds.txByAddr[tx.To], tx)
		}
	}
}

// ByLabel looks a domain up by its plaintext label.
func (ds *Dataset) ByLabel(label string) (*Domain, bool) {
	lh, ok := ds.byLabel[strings.ToLower(strings.TrimSuffix(label, ".eth"))]
	if !ok {
		return nil, false
	}
	return ds.Domains[lh], true
}

// TxsOf returns the transactions involving addr, in time order.
func (ds *Dataset) TxsOf(addr ethtypes.Address) []*Tx {
	return ds.txByAddr[addr]
}

// IncomingOf returns the transactions received by addr in [from, to).
func (ds *Dataset) IncomingOf(addr ethtypes.Address, from, to int64) []*Tx {
	var out []*Tx
	for _, tx := range ds.txByAddr[addr] {
		if tx.To == addr && tx.Timestamp >= from && tx.Timestamp < to && !tx.Failed {
			out = append(out, tx)
		}
	}
	return out
}

// IsCustodial reports whether addr belongs to a non-Coinbase custodial
// service (the class the loss analysis filters out).
func (ds *Dataset) IsCustodial(addr ethtypes.Address) bool {
	return ds.OtherCustodial[addr]
}

// IsCoinbase reports whether addr is a Coinbase hot wallet.
func (ds *Dataset) IsCoinbase(addr ethtypes.Address) bool {
	return ds.Coinbase[addr]
}
