package ensdropcatch

// End-to-end pipeline test: the exact topology of the command-line tools —
// ensworld's single-listener mux serving all three APIs, enscrawl's
// rate-limited resumable crawl, persistence to disk, and ensanalyze's full
// analysis pass over the reloaded dataset.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	// 1. Generate the world and stand up the ensworld mux.
	cfg := world.DefaultConfig(1200)
	cfg.Seed = 11
	res, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := subgraph.BuildIndex(res.Chain)
	mux := http.NewServeMux()
	mux.Handle("/subgraph", subgraph.NewServer(store, nil))
	mux.Handle("/etherscan/", http.StripPrefix("/etherscan",
		etherscan.NewServer(res.Chain, dataset.LabelsFromWorld(res), 200, nil)))
	mux.Handle("/opensea/", http.StripPrefix("/opensea", opensea.NewServer(res.OpenSea)))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// 2. Crawl it like enscrawl, with resume enabled and real (if fast)
	// client-side pacing against the server's rate limiter.
	esClient := etherscan.NewClient(srv.URL+"/etherscan", "e2e")
	esClient.MinInterval = time.Second / 150 // below the server's 200 rps
	dir := t.TempDir()
	ds, err := dataset.Build(context.Background(),
		subgraph.NewClient(srv.URL+"/subgraph"),
		esClient,
		opensea.NewClient(srv.URL+"/opensea"),
		dataset.BuildOptions{
			Start: cfg.Start, End: cfg.End,
			TxWorkers: 4, ResumeDir: filepath.Join(dir, "resume"),
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Domains) != cfg.NumDomains {
		t.Fatalf("crawled %d domains, want %d", len(ds.Domains), cfg.NumDomains)
	}

	// 3. Persist and reload, like the tools hand off through disk.
	dataDir := filepath.Join(dir, "data")
	if err := ds.Save(dataDir); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataset.Load(dataDir)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Run the complete analysis over the reloaded dataset.
	an := core.NewAnalyzer(loaded, res.Oracle)
	if len(an.Pop.Reregistered) == 0 {
		t.Fatal("no re-registrations detected end-to-end")
	}
	if _, err := an.FeatureComparison(); err != nil {
		t.Fatalf("feature comparison: %v", err)
	}
	losses := an.FinancialLosses()
	resale := an.ResaleMarket()
	st := an.CollectionStats()
	t.Logf("e2e: %d domains, %d subdomains, %d txs; %d re-registered; %d loss findings; %d listed",
		st.Domains, st.Subdomains, st.Transactions, len(an.Pop.Reregistered), len(losses.Findings), resale.Listed)

	// The crawl visits registrant addresses (like the paper's "Ethereum
	// addresses of ENS domain owners"), so transactions touching only
	// non-registrants (e.g. delegated subdomain owners) are out of
	// scope; coverage must still be near-complete.
	if chainTxs := res.Chain.TxCount(); st.Transactions < chainTxs*95/100 {
		t.Errorf("crawled %d of %d chain txs (<95%%)", st.Transactions, chainTxs)
	}
	if st.Subdomains == 0 {
		t.Error("no subdomains crawled")
	}
	// Cross-check a headline number against the in-process path.
	direct, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	directAn := core.NewAnalyzer(direct, res.Oracle)
	if len(directAn.Pop.Reregistered) != len(an.Pop.Reregistered) {
		t.Errorf("HTTP path found %d re-registrations, direct path %d",
			len(an.Pop.Reregistered), len(directAn.Pop.Reregistered))
	}
}
