package ensdropcatch_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"ensdropcatch/internal/chain"
	"ensdropcatch/internal/core"
	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/ens"
	"ensdropcatch/internal/ethtypes"
	"ensdropcatch/internal/pricing"
	"ensdropcatch/internal/world"
)

// Example_dropcatch walks the core mechanics end to end on a two-party
// chain: registration, expiry, the stale resolution that makes
// dropcatching profitable, and the re-registration that hijacks it.
func Example_dropcatch() {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	c := chain.New(start)
	svc := ens.Deploy(c, pricing.NewOracleNoise(0))

	alice := ethtypes.DeriveAddress("example-alice")
	mallory := ethtypes.DeriveAddress("example-mallory")
	c.Mint(alice, ethtypes.Ether(100))
	c.Mint(mallory, ethtypes.Ether(100))

	// Alice registers gold.eth for a year and points it at her wallet.
	svc.Register(start, alice, alice, "gold", ens.Year, svc.PriceWei("gold", ens.Year, start))
	svc.SetAddr(start+60, alice, "gold", alice)

	reg, _ := svc.Registration("gold")
	fmt.Println("available during grace period:", svc.Available("gold", reg.Expiry+86400))

	// Long after expiry the name STILL resolves to alice.
	addr, _ := svc.Resolve("gold")
	fmt.Println("stale resolution still alice:", addr == alice)

	// Mallory catches it the moment the premium hits zero.
	at := ens.PremiumEndTime(reg.Expiry) + 1
	svc.Register(at, mallory, mallory, "gold", ens.Year, svc.PriceWei("gold", ens.Year, at))
	svc.SetAddr(at+60, mallory, "gold", mallory)

	addr, _ = svc.Resolve("gold")
	fmt.Println("now resolves to mallory:", addr == mallory)
	// Output:
	// available during grace period: false
	// stale resolution still alice: true
	// now resolves to mallory: true
}

// Example_pipeline runs the full measurement pipeline in miniature:
// generate a world, assemble the dataset the way §3 does, and classify
// the population the way §4 does.
func Example_pipeline() {
	cfg := world.DefaultConfig(400)
	cfg.Seed = 17
	res, err := world.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.FromWorld(context.Background(), res, dataset.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	an := core.NewAnalyzer(ds, res.Oracle)

	total := len(an.Pop.Reregistered) + len(an.Pop.ExpiredNotRereg) +
		len(an.Pop.ActiveAtEnd) + len(an.Pop.SameOwnerRereg)
	fmt.Println("domains classified:", total == 400)
	fmt.Println("found re-registrations:", len(an.Pop.Reregistered) > 0)
	// Output:
	// domains classified: true
	// found re-registrations: true
}

// Example_premium prints the Dutch-auction decay for an expired name.
func Example_premium() {
	expiry := time.Date(2023, 1, 15, 0, 0, 0, 0, time.UTC).Unix()
	release := ens.ReleaseTime(expiry)
	for _, day := range []int64{0, 7, 14, 21} {
		at := release + day*86400
		fmt.Printf("day %2d: %.0f USD\n", day, ens.PremiumUSDAt(expiry, at))
	}
	// Output:
	// day  0: 99999952 USD
	// day  7: 781202 USD
	// day 14: 6056 USD
	// day 21: 0 USD
}
