package ensdropcatch

// Serve-path benchmarks: per-request cost of each data-route handler on
// an in-process world, without network or multiplexer overhead. These
// are the numbers the PR 8 hot-path work is gated on — allocs/op here is
// allocs/request on the serve path — and cmd/benchjson folds them into
// BENCH_LOAD.json next to the ensload latency report (make bench-load).

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ensdropcatch/internal/dataset"
	"ensdropcatch/internal/etherscan"
	"ensdropcatch/internal/ethrpc"
	"ensdropcatch/internal/opensea"
	"ensdropcatch/internal/subgraph"
	"ensdropcatch/internal/world"
)

// serveWorld lazily generates one small world shared by every serve
// benchmark; generation dominates otherwise.
var serveWorld = sync.OnceValue(func() *world.Result {
	cfg := world.DefaultConfig(2000)
	cfg.Seed = 1
	res, err := world.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return res
})

// discardWriter is a ResponseWriter that throws the body away, so the
// benchmarks measure handler cost, not recorder bookkeeping.
type discardWriter struct {
	h    http.Header
	code int
	n    int
}

func (d *discardWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header, 4)
	}
	return d.h
}

func (d *discardWriter) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }

func (d *discardWriter) WriteHeader(code int) { d.code = code }

func benchHandler(b *testing.B, h http.Handler, newReq func() *http.Request) {
	b.Helper()
	w := &discardWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newReq()
		w.code = 0
		h.ServeHTTP(w, r)
		if w.code != 0 && w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
}

func BenchmarkServeSubgraphPage(b *testing.B) {
	res := serveWorld()
	store := subgraph.BuildIndex(res.Chain)
	srv := subgraph.NewServer(store, nil)
	body := []byte(`{"query": "{ registrationEvents(first: 100) { id type label labelName registrant expiryDate costWei timestamp blockNumber txHash } }"}`)
	benchHandler(b, srv, func() *http.Request {
		return httptest.NewRequest(http.MethodPost, "/subgraph", bytes.NewReader(body))
	})
}

func BenchmarkServeEtherscanTxlist(b *testing.B) {
	res := serveWorld()
	// Pick a busy address deterministically: the registrar controller sees
	// every registration, so use the From of the first transaction.
	txs := res.Chain.Transactions()
	if len(txs) == 0 {
		b.Skip("world has no transactions")
	}
	addr := txs[0].From.Hex()
	srv := etherscan.NewServer(res.Chain, dataset.LabelsFromWorld(res), 1<<30, nil)
	url := "/api?module=account&action=txlist&address=" + addr + "&page=1&offset=100&apikey=bench"
	benchHandler(b, srv, func() *http.Request {
		return httptest.NewRequest(http.MethodGet, url, nil)
	})
}

func BenchmarkServeOpenSeaEvents(b *testing.B) {
	res := serveWorld()
	srv := opensea.NewServer(res.OpenSea)
	benchHandler(b, srv, func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "/events?limit=50", nil)
	})
}

func BenchmarkServeRPCGetBalance(b *testing.B) {
	res := serveWorld()
	txs := res.Chain.Transactions()
	if len(txs) == 0 {
		b.Skip("world has no transactions")
	}
	srv := ethrpc.NewServer(res.Chain)
	body := `{"jsonrpc":"2.0","id":1,"method":"eth_getBalance","params":["` + strings.ToLower(txs[0].From.Hex()) + `"]}`
	benchHandler(b, srv, func() *http.Request {
		return httptest.NewRequest(http.MethodPost, "/rpc", strings.NewReader(body))
	})
}
